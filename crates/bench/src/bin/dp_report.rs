//! DP kernel performance report: wall-clock and candidate-count trajectory
//! of the pruned `A_DMV` kernels vs. the exhaustive reference, plus the
//! incremental-in-`n` series, written to `results/BENCH_dp.json`.
//!
//! Usage:
//!   cargo run --release -p chain2l-bench --bin dp_report              # report
//!   cargo run --release -p chain2l-bench --bin dp_report -- \
//!       --check crates/bench/baselines/dp_candidates.csv             # CI gate
//!   cargo run --release -p chain2l-bench --bin dp_report -- --full   # + n=100 exhaustive
//!   cargo run --release -p chain2l-bench --bin dp_report -- --wall   # wall-clock bench
//!   cargo run --release -p chain2l-bench --bin dp_report -- \
//!       --wall --check-wall crates/bench/baselines/BENCH_wall.json   # wall-clock gate
//!
//! `--check` re-runs the reference scenarios and **fails (exit 1) when any
//! pruned `candidates_examined` exceeds its recorded baseline** — the counts
//! are deterministic, so any regression is a real pruning regression, not
//! noise.  Coverage is enforced both ways (unmonitored measured cells fail
//! too).  The baseline CSV rows are `platform,n,algorithm,max_candidates`;
//! regenerate them with `--print-baseline` after an intentional kernel
//! change.  A recorded trajectory snapshot lives at
//! `crates/bench/baselines/BENCH_dp.json` (`results/` is gitignored).
//!
//! `--wall` measures cold-solve wall-clock ([`WALL_WARMUP`] untimed warmup
//! solves, then best of [`WALL_REPEATS`] timed ones), peak
//! RSS and heap-allocation counts (via the counting global allocator below)
//! for the pruned `A_DMV` kernel at `n ∈ {25, 50, 100}`, writes
//! `results/BENCH_wall.json`, and — when the recorded baseline exists —
//! annotates every cell with its improvement factor over it.
//! `--check-wall` additionally **fails (exit 1) when the `n = 50` cell
//! regresses by more than 15 %** against the recorded wall-clock baseline
//! (`crates/bench/baselines/BENCH_wall.json`); unlike the candidate gate
//! this one measures time, so the tolerance absorbs scheduler noise while
//! still catching the allocator/bandwidth regressions the arena work is
//! protecting against.

use chain2l_analysis::experiments::weak_scaling_scenario;
use chain2l_bench::write_result_file;
use chain2l_core::incremental::IncrementalSolver;
use chain2l_core::{optimize_with_partials, Algorithm, PartialOptions, Solution};
use chain2l_model::platform::scr;
use chain2l_model::{Platform, Scenario, WeightPattern};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of timed runs per wall-clock cell; the fastest is reported (the
/// minimum is the standard low-noise estimator for deterministic work).
const WALL_REPEATS: usize = 5;

/// Untimed warmup solves before the best-of-[`WALL_REPEATS`] window: the
/// first cold solve of a cell first-touches every freshly arena-allocated
/// plane, so its wall clock includes the process's page-fault cost — noise
/// that would pollute a cross-build baseline comparison.  The warmup solves
/// fault those pages in (the allocator hands the freed plane memory back to
/// the next solve), so every timed repeat runs over resident memory.
const WALL_WARMUP: usize = 2;

/// Wall-clock regression tolerance of the `--check-wall` gate.
const WALL_TOLERANCE: f64 = 1.15;

/// Heap allocations performed since process start (alloc + realloc calls).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// [`System`] with an allocation counter: the only way to observe allocator
/// churn from safe benchmark code.  Deallocations are not counted — the
/// report tracks how often the hot path asks the allocator for memory, which
/// is exactly what the table arena is meant to drive to zero.
struct CountingAllocator;

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
// lint: allow-file(unsafe-code: GlobalAlloc has an unsafe-only interface; this counting shim delegates verbatim to System and is bench instrumentation, not product code)
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// One measured reference cell.
struct Cell {
    platform: String,
    n: usize,
    algorithm: Algorithm,
    pruned: Measure,
    exhaustive: Option<Measure>,
}

struct Measure {
    millis: f64,
    candidates: u64,
    table_entries: usize,
}

fn measure<F: Fn() -> Solution>(solve: F) -> Measure {
    let start = Instant::now();
    let solution = solve();
    Measure {
        millis: start.elapsed().as_secs_f64() * 1e3,
        candidates: solution.stats.candidates_examined,
        table_entries: solution.stats.table_entries,
    }
}

/// The reference scenarios of the CI gate: every Table I platform at the
/// paper's `n = 50`, plus Hera at 25 and 100 for the scaling trajectory.
fn reference_cells() -> Vec<(Platform, usize)> {
    let mut cells: Vec<(Platform, usize)> = scr::all().into_iter().map(|p| (p, 50)).collect();
    cells.push((scr::hera(), 25));
    cells.push((scr::hera(), 100));
    cells
}

/// How much of the exhaustive reference to measure alongside the pruned
/// kernel.
#[derive(Clone, Copy, PartialEq)]
enum Exhaustive {
    /// None — the `--check` gate reads only pruned candidate counts.
    Skip,
    /// Up to `n = 50` (the default report).
    Small,
    /// Every cell (`--full`; the unpruned `n = 100` solve takes ~10x).
    All,
}

fn run_cells(exhaustive: Exhaustive) -> Vec<Cell> {
    reference_cells()
        .into_iter()
        .map(|(platform, n)| {
            let s = Scenario::paper_setup(&platform, &WeightPattern::Uniform, n, 25_000.0)
                .expect("valid paper setup");
            let pruned = measure(|| optimize_with_partials(&s, PartialOptions::paper_exact()));
            let reference = match exhaustive {
                Exhaustive::Skip => false,
                Exhaustive::Small => n <= 50,
                Exhaustive::All => true,
            };
            let exhaustive = reference.then(|| {
                measure(|| {
                    optimize_with_partials(&s, PartialOptions::paper_exact().without_pruning())
                })
            });
            Cell {
                platform: platform.name.clone(),
                n,
                algorithm: Algorithm::TwoLevelPartial,
                pruned,
                exhaustive,
            }
        })
        .collect()
}

/// Ascending incremental weak-scaling series vs. cold solves of every point.
struct SeriesReport {
    points: Vec<usize>,
    incremental_millis: f64,
    cold_millis: f64,
    stats: String,
}

fn run_series() -> SeriesReport {
    let platform = scr::hera();
    let points = vec![25usize, 50, 100];
    let solver = IncrementalSolver::new();
    let start = Instant::now();
    for &n in &points {
        solver.solve(&weak_scaling_scenario(&platform, n, 500.0), Algorithm::TwoLevelPartial);
    }
    let incremental_millis = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    for &n in &points {
        optimize_with_partials(
            &weak_scaling_scenario(&platform, n, 500.0),
            PartialOptions::paper_exact(),
        );
    }
    let cold_millis = start.elapsed().as_secs_f64() * 1e3;
    SeriesReport { points, incremental_millis, cold_millis, stats: solver.stats().to_string() }
}

/// One wall-clock bench cell: cold pruned solves of the `A_DMV` kernel.
struct WallCell {
    platform: String,
    n: usize,
    algorithm: Algorithm,
    /// Fastest of [`WALL_REPEATS`] cold solves, in milliseconds.
    wall_millis: f64,
    /// Heap allocations (alloc + realloc) of one cold solve.
    allocations: u64,
    /// Process peak RSS after the cell ran (`VmHWM`, cumulative across
    /// cells — run the largest `n` last), 0 where unsupported.
    peak_rss_kb: u64,
}

/// Process peak resident set (`VmHWM` from `/proc/self/status`, Linux only;
/// falls back to the current `VmRSS` on kernels that do not report a
/// high-water mark, and to 0 where `/proc` is unavailable).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    let field = |key: &str| {
        status
            .lines()
            .find_map(|line| line.strip_prefix(key))
            .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
    };
    field("VmHWM:").or_else(|| field("VmRSS:")).unwrap_or(0)
}

/// The wall-clock reference cells: Hera `A_DMV` at `n ∈ {25, 50, 100}`
/// (paper setup, uniform weights), cold pruned solves only — the scenario
/// family both the `n = 50` CI gate and the `n = 100` cold-solve trajectory
/// read from.
fn run_wall_cells() -> Vec<WallCell> {
    [25usize, 50, 100]
        .into_iter()
        .map(|n| {
            let platform = scr::hera();
            let s = Scenario::paper_setup(&platform, &WeightPattern::Uniform, n, 25_000.0)
                .expect("valid paper setup");
            let mut wall_millis = f64::INFINITY;
            let mut allocations = 0;
            for _ in 0..WALL_WARMUP {
                let solution = optimize_with_partials(&s, PartialOptions::paper_exact());
                assert!(solution.expected_makespan.is_finite());
            }
            for _ in 0..WALL_REPEATS {
                let before = ALLOCATIONS.load(Ordering::Relaxed);
                let start = Instant::now();
                let solution = optimize_with_partials(&s, PartialOptions::paper_exact());
                let millis = start.elapsed().as_secs_f64() * 1e3;
                allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
                assert!(solution.expected_makespan.is_finite());
                wall_millis = wall_millis.min(millis);
            }
            WallCell {
                platform: platform.name,
                n,
                algorithm: Algorithm::TwoLevelPartial,
                wall_millis,
                allocations,
                peak_rss_kb: peak_rss_kb(),
            }
        })
        .collect()
}

/// Extracts a `"key": value` field from one rendered JSON line (the wall
/// report is rendered one cell per line, so line-oriented parsing is exact
/// for our own output format — no JSON dependency needed offline).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\": ");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Parses `(platform, n, wall_millis)` rows out of a recorded
/// `BENCH_wall.json`.
fn parse_wall_baseline(text: &str) -> Vec<(String, usize, f64)> {
    text.lines()
        .filter(|line| line.contains("\"wall_millis\""))
        .filter_map(|line| {
            Some((
                json_field(line, "platform")?.to_string(),
                json_field(line, "n")?.parse().ok()?,
                json_field(line, "wall_millis")?.parse().ok()?,
            ))
        })
        .collect()
}

fn render_wall_json(cells: &[WallCell], baseline: &[(String, usize, f64)]) -> String {
    let mut out = String::from("{\n  \"report\": \"dp_wall\",\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"platform\": \"{}\", \"pattern\": \"uniform\", \"n\": {}, \
             \"algorithm\": \"{}\", \"wall_millis\": {:.3}, \"allocations\": {}, \
             \"peak_rss_kb\": {}",
            c.platform,
            c.n,
            c.algorithm.label(),
            c.wall_millis,
            c.allocations,
            c.peak_rss_kb,
        ));
        if let Some((_, _, base)) =
            baseline.iter().find(|(platform, n, _)| *platform == c.platform && *n == c.n)
        {
            out.push_str(&format!(
                ", \"baseline_wall_millis\": {:.3}, \"improvement\": {:.2}",
                base,
                base / c.wall_millis
            ));
        }
        out.push_str(if i + 1 == cells.len() { "}\n" } else { "},\n" });
    }
    out.push_str(&format!(
        "  ],\n  \"repeats\": {WALL_REPEATS},\n  \"warmup\": {WALL_WARMUP},\n  \
         \"methodology\": \"per cell: {WALL_WARMUP} untimed warmup solves fault the \
         plane memory in, then wall_millis is the fastest of {WALL_REPEATS} timed \
         cold solves; allocations counts one solve; re-seed the baseline on each \
         hardware class\",\n  \"gate\": {{\"platform\": \"Hera\", \
         \"n\": 50, \"max_regression\": {WALL_TOLERANCE}}}\n}}\n"
    ));
    out
}

/// The `--check-wall` gate: the `n = 50` reference cell must stay within
/// [`WALL_TOLERANCE`] of its recorded baseline.  Returns the number of
/// regressions (baseline rows for other cells are informational only — small
/// cells are noise-dominated and `n = 100` tracks the trajectory).
fn check_wall(cells: &[WallCell], baseline: &[(String, usize, f64)]) -> usize {
    let mut regressions = 0;
    let Some(cell) = cells.iter().find(|c| c.platform == "Hera" && c.n == 50) else {
        eprintln!("dp_report: wall gate cell Hera n=50 was not measured");
        return 1;
    };
    match baseline.iter().find(|(platform, n, _)| platform == "Hera" && *n == 50) {
        None => {
            eprintln!("dp_report: wall baseline has no Hera n=50 row");
            regressions += 1;
        }
        Some((_, _, base)) if cell.wall_millis > base * WALL_TOLERANCE => {
            eprintln!(
                "dp_report: WALL REGRESSION Hera n=50: {:.1} ms > {:.1} ms baseline x {:.2}",
                cell.wall_millis, base, WALL_TOLERANCE
            );
            regressions += 1;
        }
        Some((_, _, base)) => {
            eprintln!(
                "dp_report: wall ok Hera n=50: {:.1} ms <= {:.1} ms baseline x {:.2}",
                cell.wall_millis, base, WALL_TOLERANCE
            );
        }
    }
    regressions
}

fn run_wall(check: Option<String>, baseline_path: &str) -> i32 {
    let cells = run_wall_cells();
    let baseline = std::fs::read_to_string(check.as_deref().unwrap_or(baseline_path))
        .map(|text| parse_wall_baseline(&text))
        .unwrap_or_default();
    for c in &cells {
        let vs = baseline
            .iter()
            .find(|(platform, n, _)| *platform == c.platform && *n == c.n)
            .map(|(_, _, base)| {
                format!(" ({:.2}x vs baseline {:.1} ms)", base / c.wall_millis, base)
            })
            .unwrap_or_default();
        eprintln!(
            "dp_report: wall {} n={}: {:.1} ms, {} allocations, peak RSS {} kB{vs}",
            c.platform, c.n, c.wall_millis, c.allocations, c.peak_rss_kb
        );
    }
    let json = render_wall_json(&cells, &baseline);
    print!("{json}");
    if let Some(path) = write_result_file("BENCH_wall.json", &json) {
        eprintln!("dp_report: JSON written to {}", path.display());
    }
    if check.is_some() {
        let regressions = check_wall(&cells, &baseline);
        if regressions > 0 {
            eprintln!("dp_report: {regressions} wall-clock regression(s)");
            return 1;
        }
        eprintln!("dp_report: no wall-clock regressions");
    }
    0
}

fn render_json(cells: &[Cell], series: &SeriesReport) -> String {
    let mut out = String::from("{\n  \"report\": \"dp_report\",\n  \"scenarios\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"platform\": \"{}\", \"pattern\": \"uniform\", \"n\": {}, \
             \"algorithm\": \"{}\", \"pruned\": {{\"millis\": {:.3}, \"candidates\": {}, \
             \"table_entries\": {}}}",
            c.platform,
            c.n,
            c.algorithm.label(),
            c.pruned.millis,
            c.pruned.candidates,
            c.pruned.table_entries,
        ));
        if let Some(e) = &c.exhaustive {
            out.push_str(&format!(
                ", \"exhaustive\": {{\"millis\": {:.3}, \"candidates\": {}}}, \
                 \"speedup\": {:.2}, \"candidate_reduction\": {:.2}",
                e.millis,
                e.candidates,
                e.millis / c.pruned.millis,
                e.candidates as f64 / c.pruned.candidates as f64,
            ));
        }
        out.push_str(if i + 1 == cells.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"incremental_series\": {{\"platform\": \"Hera\", \"algorithm\": \"ADMV\", \
         \"per_task_weight\": 500.0, \"points\": {:?}, \"incremental_millis\": {:.3}, \
         \"cold_millis\": {:.3}, \"amortization\": {:.2}, \"solver\": \"{}\"}}\n}}\n",
        series.points,
        series.incremental_millis,
        series.cold_millis,
        series.cold_millis / series.incremental_millis,
        series.stats,
    ));
    out
}

fn baseline_rows(cells: &[Cell]) -> String {
    let mut out = String::from("platform,n,algorithm,max_candidates\n");
    for c in cells {
        out.push_str(&format!(
            "{},{},{},{}\n",
            c.platform,
            c.n,
            c.algorithm.label(),
            c.pruned.candidates
        ));
    }
    out
}

/// Compares measured pruned candidate counts against the recorded baseline;
/// returns the number of regressions.  Coverage is checked both ways: a
/// baseline row without a measured cell fails, and so does a measured
/// reference cell without a baseline row (an unmonitored scenario would let
/// a pruning regression ship undetected).
fn check_baseline(cells: &[Cell], baseline: &str) -> usize {
    let mut regressions = 0;
    let mut covered = vec![false; cells.len()];
    for line in baseline.lines().skip(1) {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // platform names contain no commas in Table I; split from the right
        // so a future name with a comma fails loudly instead of silently.
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            eprintln!("dp_report: malformed baseline row `{line}`");
            regressions += 1;
            continue;
        }
        let (platform, n, algorithm, max): (&str, usize, &str, u64) = (
            fields[0],
            fields[1].parse().expect("baseline n"),
            fields[2],
            fields[3].parse().expect("baseline candidates"),
        );
        match cells
            .iter()
            .position(|c| c.platform == platform && c.n == n && c.algorithm.label() == algorithm)
            .map(|i| {
                covered[i] = true;
                &cells[i]
            }) {
            None => {
                eprintln!("dp_report: baseline row `{line}` has no measured cell");
                regressions += 1;
            }
            Some(cell) if cell.pruned.candidates > max => {
                eprintln!(
                    "dp_report: REGRESSION {platform} n={n} {algorithm}: \
                     {} candidates > baseline {max}",
                    cell.pruned.candidates
                );
                regressions += 1;
            }
            Some(cell) => {
                eprintln!(
                    "dp_report: ok {platform} n={n} {algorithm}: {} <= {max}",
                    cell.pruned.candidates
                );
            }
        }
    }
    for (cell, covered) in cells.iter().zip(&covered) {
        if !covered {
            eprintln!(
                "dp_report: UNMONITORED {} n={} {} has no baseline row",
                cell.platform,
                cell.n,
                cell.algorithm.label()
            );
            regressions += 1;
        }
    }
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--wall") {
        let check = args
            .iter()
            .position(|a| a == "--check-wall")
            .map(|i| args.get(i + 1).cloned().expect("--check-wall needs a baseline path"));
        std::process::exit(run_wall(check, "crates/bench/baselines/BENCH_wall.json"));
    }
    let check = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).cloned().expect("--check needs a baseline path"));
    let exhaustive = if check.is_some() || args.iter().any(|a| a == "--print-baseline") {
        Exhaustive::Skip
    } else if args.iter().any(|a| a == "--full") {
        Exhaustive::All
    } else {
        Exhaustive::Small
    };

    let cells = run_cells(exhaustive);
    for c in &cells {
        match &c.exhaustive {
            Some(e) => eprintln!(
                "dp_report: {} n={}: pruned {:.1} ms / {} cands vs exhaustive {:.1} ms / {} \
                 cands ({:.1}x faster, {:.1}x fewer candidates)",
                c.platform,
                c.n,
                c.pruned.millis,
                c.pruned.candidates,
                e.millis,
                e.candidates,
                e.millis / c.pruned.millis,
                e.candidates as f64 / c.pruned.candidates as f64,
            ),
            None => eprintln!(
                "dp_report: {} n={}: pruned {:.1} ms / {} cands",
                c.platform, c.n, c.pruned.millis, c.pruned.candidates
            ),
        }
    }

    if let Some(path) = check {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let regressions = check_baseline(&cells, &baseline);
        if regressions > 0 {
            eprintln!("dp_report: {regressions} candidate-count regression(s)");
            std::process::exit(1);
        }
        eprintln!("dp_report: no candidate-count regressions");
        return;
    }

    if args.iter().any(|a| a == "--print-baseline") {
        print!("{}", baseline_rows(&cells));
        return;
    }

    let series = run_series();
    eprintln!(
        "dp_report: incremental series {:?}: {:.1} ms vs {:.1} ms cold ({})",
        series.points, series.incremental_millis, series.cold_millis, series.stats
    );
    let json = render_json(&cells, &series);
    print!("{json}");
    if let Some(path) = write_result_file("BENCH_dp.json", &json) {
        eprintln!("dp_report: JSON written to {}", path.display());
    }
}
