//! DP kernel performance report: wall-clock and candidate-count trajectory
//! of the pruned `A_DMV` kernels vs. the exhaustive reference, plus the
//! incremental-in-`n` series, written to `results/BENCH_dp.json`.
//!
//! Usage:
//!   cargo run --release -p chain2l-bench --bin dp_report              # report
//!   cargo run --release -p chain2l-bench --bin dp_report -- \
//!       --check crates/bench/baselines/dp_candidates.csv             # CI gate
//!   cargo run --release -p chain2l-bench --bin dp_report -- --full   # + n=100 exhaustive
//!
//! `--check` re-runs the reference scenarios and **fails (exit 1) when any
//! pruned `candidates_examined` exceeds its recorded baseline** — the counts
//! are deterministic, so any regression is a real pruning regression, not
//! noise.  Coverage is enforced both ways (unmonitored measured cells fail
//! too).  The baseline CSV rows are `platform,n,algorithm,max_candidates`;
//! regenerate them with `--print-baseline` after an intentional kernel
//! change.  A recorded trajectory snapshot lives at
//! `crates/bench/baselines/BENCH_dp.json` (`results/` is gitignored).

use chain2l_analysis::experiments::weak_scaling_scenario;
use chain2l_bench::write_result_file;
use chain2l_core::incremental::IncrementalSolver;
use chain2l_core::{optimize_with_partials, Algorithm, PartialOptions, Solution};
use chain2l_model::platform::scr;
use chain2l_model::{Platform, Scenario, WeightPattern};
use std::time::Instant;

/// One measured reference cell.
struct Cell {
    platform: String,
    n: usize,
    algorithm: Algorithm,
    pruned: Measure,
    exhaustive: Option<Measure>,
}

struct Measure {
    millis: f64,
    candidates: u64,
    table_entries: usize,
}

fn measure<F: Fn() -> Solution>(solve: F) -> Measure {
    let start = Instant::now();
    let solution = solve();
    Measure {
        millis: start.elapsed().as_secs_f64() * 1e3,
        candidates: solution.stats.candidates_examined,
        table_entries: solution.stats.table_entries,
    }
}

/// The reference scenarios of the CI gate: every Table I platform at the
/// paper's `n = 50`, plus Hera at 25 and 100 for the scaling trajectory.
fn reference_cells() -> Vec<(Platform, usize)> {
    let mut cells: Vec<(Platform, usize)> = scr::all().into_iter().map(|p| (p, 50)).collect();
    cells.push((scr::hera(), 25));
    cells.push((scr::hera(), 100));
    cells
}

/// How much of the exhaustive reference to measure alongside the pruned
/// kernel.
#[derive(Clone, Copy, PartialEq)]
enum Exhaustive {
    /// None — the `--check` gate reads only pruned candidate counts.
    Skip,
    /// Up to `n = 50` (the default report).
    Small,
    /// Every cell (`--full`; the unpruned `n = 100` solve takes ~10x).
    All,
}

fn run_cells(exhaustive: Exhaustive) -> Vec<Cell> {
    reference_cells()
        .into_iter()
        .map(|(platform, n)| {
            let s = Scenario::paper_setup(&platform, &WeightPattern::Uniform, n, 25_000.0)
                .expect("valid paper setup");
            let pruned = measure(|| optimize_with_partials(&s, PartialOptions::paper_exact()));
            let reference = match exhaustive {
                Exhaustive::Skip => false,
                Exhaustive::Small => n <= 50,
                Exhaustive::All => true,
            };
            let exhaustive = reference.then(|| {
                measure(|| {
                    optimize_with_partials(&s, PartialOptions::paper_exact().without_pruning())
                })
            });
            Cell {
                platform: platform.name.clone(),
                n,
                algorithm: Algorithm::TwoLevelPartial,
                pruned,
                exhaustive,
            }
        })
        .collect()
}

/// Ascending incremental weak-scaling series vs. cold solves of every point.
struct SeriesReport {
    points: Vec<usize>,
    incremental_millis: f64,
    cold_millis: f64,
    stats: String,
}

fn run_series() -> SeriesReport {
    let platform = scr::hera();
    let points = vec![25usize, 50, 100];
    let solver = IncrementalSolver::new();
    let start = Instant::now();
    for &n in &points {
        solver.solve(&weak_scaling_scenario(&platform, n, 500.0), Algorithm::TwoLevelPartial);
    }
    let incremental_millis = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    for &n in &points {
        optimize_with_partials(
            &weak_scaling_scenario(&platform, n, 500.0),
            PartialOptions::paper_exact(),
        );
    }
    let cold_millis = start.elapsed().as_secs_f64() * 1e3;
    SeriesReport { points, incremental_millis, cold_millis, stats: solver.stats().to_string() }
}

fn render_json(cells: &[Cell], series: &SeriesReport) -> String {
    let mut out = String::from("{\n  \"report\": \"dp_report\",\n  \"scenarios\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"platform\": \"{}\", \"pattern\": \"uniform\", \"n\": {}, \
             \"algorithm\": \"{}\", \"pruned\": {{\"millis\": {:.3}, \"candidates\": {}, \
             \"table_entries\": {}}}",
            c.platform,
            c.n,
            c.algorithm.label(),
            c.pruned.millis,
            c.pruned.candidates,
            c.pruned.table_entries,
        ));
        if let Some(e) = &c.exhaustive {
            out.push_str(&format!(
                ", \"exhaustive\": {{\"millis\": {:.3}, \"candidates\": {}}}, \
                 \"speedup\": {:.2}, \"candidate_reduction\": {:.2}",
                e.millis,
                e.candidates,
                e.millis / c.pruned.millis,
                e.candidates as f64 / c.pruned.candidates as f64,
            ));
        }
        out.push_str(if i + 1 == cells.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"incremental_series\": {{\"platform\": \"Hera\", \"algorithm\": \"ADMV\", \
         \"per_task_weight\": 500.0, \"points\": {:?}, \"incremental_millis\": {:.3}, \
         \"cold_millis\": {:.3}, \"amortization\": {:.2}, \"solver\": \"{}\"}}\n}}\n",
        series.points,
        series.incremental_millis,
        series.cold_millis,
        series.cold_millis / series.incremental_millis,
        series.stats,
    ));
    out
}

fn baseline_rows(cells: &[Cell]) -> String {
    let mut out = String::from("platform,n,algorithm,max_candidates\n");
    for c in cells {
        out.push_str(&format!(
            "{},{},{},{}\n",
            c.platform,
            c.n,
            c.algorithm.label(),
            c.pruned.candidates
        ));
    }
    out
}

/// Compares measured pruned candidate counts against the recorded baseline;
/// returns the number of regressions.  Coverage is checked both ways: a
/// baseline row without a measured cell fails, and so does a measured
/// reference cell without a baseline row (an unmonitored scenario would let
/// a pruning regression ship undetected).
fn check_baseline(cells: &[Cell], baseline: &str) -> usize {
    let mut regressions = 0;
    let mut covered = vec![false; cells.len()];
    for line in baseline.lines().skip(1) {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // platform names contain no commas in Table I; split from the right
        // so a future name with a comma fails loudly instead of silently.
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            eprintln!("dp_report: malformed baseline row `{line}`");
            regressions += 1;
            continue;
        }
        let (platform, n, algorithm, max): (&str, usize, &str, u64) = (
            fields[0],
            fields[1].parse().expect("baseline n"),
            fields[2],
            fields[3].parse().expect("baseline candidates"),
        );
        match cells
            .iter()
            .position(|c| c.platform == platform && c.n == n && c.algorithm.label() == algorithm)
            .map(|i| {
                covered[i] = true;
                &cells[i]
            }) {
            None => {
                eprintln!("dp_report: baseline row `{line}` has no measured cell");
                regressions += 1;
            }
            Some(cell) if cell.pruned.candidates > max => {
                eprintln!(
                    "dp_report: REGRESSION {platform} n={n} {algorithm}: \
                     {} candidates > baseline {max}",
                    cell.pruned.candidates
                );
                regressions += 1;
            }
            Some(cell) => {
                eprintln!(
                    "dp_report: ok {platform} n={n} {algorithm}: {} <= {max}",
                    cell.pruned.candidates
                );
            }
        }
    }
    for (cell, covered) in cells.iter().zip(&covered) {
        if !covered {
            eprintln!(
                "dp_report: UNMONITORED {} n={} {} has no baseline row",
                cell.platform,
                cell.n,
                cell.algorithm.label()
            );
            regressions += 1;
        }
    }
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).cloned().expect("--check needs a baseline path"));
    let exhaustive = if check.is_some() || args.iter().any(|a| a == "--print-baseline") {
        Exhaustive::Skip
    } else if args.iter().any(|a| a == "--full") {
        Exhaustive::All
    } else {
        Exhaustive::Small
    };

    let cells = run_cells(exhaustive);
    for c in &cells {
        match &c.exhaustive {
            Some(e) => eprintln!(
                "dp_report: {} n={}: pruned {:.1} ms / {} cands vs exhaustive {:.1} ms / {} \
                 cands ({:.1}x faster, {:.1}x fewer candidates)",
                c.platform,
                c.n,
                c.pruned.millis,
                c.pruned.candidates,
                e.millis,
                e.candidates,
                e.millis / c.pruned.millis,
                e.candidates as f64 / c.pruned.candidates as f64,
            ),
            None => eprintln!(
                "dp_report: {} n={}: pruned {:.1} ms / {} cands",
                c.platform, c.n, c.pruned.millis, c.pruned.candidates
            ),
        }
    }

    if let Some(path) = check {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let regressions = check_baseline(&cells, &baseline);
        if regressions > 0 {
            eprintln!("dp_report: {regressions} candidate-count regression(s)");
            std::process::exit(1);
        }
        eprintln!("dp_report: no candidate-count regressions");
        return;
    }

    if args.iter().any(|a| a == "--print-baseline") {
        print!("{}", baseline_rows(&cells));
        return;
    }

    let series = run_series();
    eprintln!(
        "dp_report: incremental series {:?}: {:.1} ms vs {:.1} ms cold ({})",
        series.points, series.incremental_millis, series.cold_millis, series.stats
    );
    let json = render_json(&cells, &series);
    print!("{json}");
    if let Some(path) = write_result_file("BENCH_dp.json", &json) {
        eprintln!("dp_report: JSON written to {}", path.display());
    }
}
