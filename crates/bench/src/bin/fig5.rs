//! Regenerates Figure 5 of the paper: for each Table I platform (Uniform
//! pattern), the normalized makespan of `A_DV*` / `A_DMV*` / `A_DMV` and the
//! checkpoint/verification counts of each algorithm, as a function of the
//! number of tasks.
//!
//! All panels share one solver `Engine`, so each distinct
//! `(platform, n, algorithm)` cell is solved exactly once — the count panels
//! are served from the makespan panel's solves (the engine statistics printed
//! to stderr prove it).
//!
//! Usage: `cargo run --release -p chain2l-bench --bin fig5 [--quick|--coarse|--paper]`

#![forbid(unsafe_code)]

use chain2l_analysis::experiments::fig5;
use chain2l_analysis::Engine;
use chain2l_bench::{config_from_args, write_result_file};

fn main() {
    let config = config_from_args(std::env::args().skip(1));
    eprintln!(
        "fig5: sweeping n in {:?} on the four Table I platforms (Uniform pattern)…",
        config.task_counts
    );
    let engine = Engine::new();
    let data = fig5(&config, &engine);
    eprintln!("fig5: solver engine — {}", engine.stats());
    print!("{}", data.render());
    let mut csv = String::new();
    for table in data.to_tables() {
        csv.push_str(&table.to_csv());
        csv.push('\n');
    }
    if let Some(path) = write_result_file("fig5.csv", &csv) {
        eprintln!("fig5: CSV written to {}", path.display());
    }
}
