//! Regenerates Figure 8 of the paper: the HighLow weight pattern (10 % of the
//! tasks hold 60 % of the weight) on Hera and Coastal SSD.
//!
//! Usage: `cargo run --release -p chain2l-bench --bin fig8 [--quick|--coarse|--paper]`

#![forbid(unsafe_code)]

use chain2l_analysis::experiments::fig8;
use chain2l_analysis::Engine;
use chain2l_bench::{config_from_args, write_result_file};

fn main() {
    let config = config_from_args(std::env::args().skip(1));
    eprintln!("fig8: HighLow pattern on Hera and Coastal SSD, n in {:?}…", config.task_counts);
    let engine = Engine::new();
    let data = fig8(&config, &engine);
    eprintln!("fig8: solver engine — {}", engine.stats());
    let out = data.render();
    print!("{out}");
    if let Some(path) = write_result_file("fig8.txt", &out) {
        eprintln!("fig8: output written to {}", path.display());
    }
}
