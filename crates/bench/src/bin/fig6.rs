//! Regenerates Figure 6 of the paper: the positions of disk checkpoints,
//! memory checkpoints, guaranteed verifications and partial verifications
//! chosen by `A_DMV` for 50 uniform tasks on each Table I platform.
//!
//! Usage: `cargo run --release -p chain2l-bench --bin fig6 [n]`

#![forbid(unsafe_code)]

use chain2l_analysis::experiments::{fig6, PAPER_TOTAL_WEIGHT};
use chain2l_analysis::Engine;
use chain2l_bench::write_result_file;

fn main() {
    let n = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(50usize);
    eprintln!("fig6: computing ADMV placements for n = {n} uniform tasks…");
    let strips = fig6(n, PAPER_TOTAL_WEIGHT, &Engine::new());
    let mut out = String::new();
    for strip in &strips {
        out.push_str(&strip.render());
        out.push('\n');
    }
    print!("{out}");
    if let Some(path) = write_result_file("fig6.txt", &out) {
        eprintln!("fig6: strips written to {}", path.display());
    }
}
