//! Serve-layer load report: sustained RPS and latency percentiles of a
//! running `chain2l serve` daemon under hundreds of concurrent pipelined
//! connections, written to `results/BENCH_serve.json`.
//!
//! Usage:
//!   chain2l serve --addr 127.0.0.1:4615 &                # a daemon to load
//!   cargo run --release -p chain2l-bench --bin bench_load -- \
//!       --addr 127.0.0.1:4615                            # report
//!   cargo run --release -p chain2l-bench --bin bench_load -- \
//!       --addr 127.0.0.1:4615 \
//!       --check crates/bench/baselines/BENCH_serve.json  # CI gate
//!
//! This binary attaches to an **already-running** daemon so the generator's
//! client sockets and the daemon's accepted sockets live under separate
//! process fd limits; `chain2l bench-load` (no `--addr`) spawns and tears
//! down a private daemon for you and shares all of this machinery
//! (`chain2l_service::loadgen`).
//!
//! `--check` fails (exit 1) when throughput drops below 1/2 of the recorded
//! baseline or p99 latency doubles — loose on purpose: shared runners are
//! noisy, and like `BENCH_wall.json` the baseline is **per hardware class**
//! (re-seed with `--print-baseline` when the fleet changes).

#![forbid(unsafe_code)]

use chain2l_service::loadgen::{self, LoadConfig};
use std::collections::HashMap;

fn main() {
    std::process::exit(run());
}

/// `--key value` pairs plus bare `--flag`s (mapped to an empty value).
fn parse_options() -> HashMap<String, String> {
    let mut options = HashMap::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        if let Some(key) = arg.strip_prefix("--") {
            let value = match args.peek() {
                Some(next) if !next.starts_with("--") => args.next().unwrap_or_default(),
                _ => String::new(),
            };
            options.insert(key.to_string(), value);
        }
    }
    options
}

fn run() -> i32 {
    let options = parse_options();
    let addr = match options.get("addr") {
        Some(addr) => addr.clone(),
        None => {
            eprintln!(
                "bench_load: --addr <host:port> of a running daemon is required \
                 (use `chain2l bench-load` to spawn one automatically)"
            );
            return 2;
        }
    };
    let parse_usize = |key: &str, default: usize| -> usize {
        options.get(key).and_then(|v| v.parse().ok()).unwrap_or(default).max(1)
    };
    let config = LoadConfig {
        addr,
        connections: parse_usize("connections", 500),
        requests_per_connection: parse_usize("requests", 20),
        window: parse_usize("window", 8),
        rps: options.get("rps").and_then(|v| v.parse().ok()).filter(|r: &f64| *r > 0.0),
    };

    let report = match loadgen::run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bench_load: load run failed: {e}");
            return 1;
        }
    };
    let json = loadgen::render_report_json(&report);
    if options.contains_key("print-baseline") {
        print!("{json}");
        return 0;
    }
    eprintln!(
        "bench_load: {} connection(s), window {}: {} of {} completed \
         ({} error(s), {} retry(s), {} shed) \
         in {:.2} s -> {:.1} rps; p50 {:.3} ms, p99 {:.3} ms, p999 {:.3} ms",
        report.connections,
        report.window,
        report.completed,
        report.requests,
        report.errors,
        report.retries,
        report.shed,
        report.duration_s,
        report.rps,
        report.p50_ms,
        report.p99_ms,
        report.p999_ms,
    );
    if let Some(path) = loadgen::write_report_file(&json) {
        eprintln!("bench_load: report written to {}", path.display());
    }
    if let Some(baseline_path) = options.get("check") {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_load: cannot read baseline {baseline_path}: {e}");
                return 1;
            }
        };
        match loadgen::check_against(&report, &baseline) {
            Ok(verdict) => eprintln!("bench_load: {verdict}"),
            Err(why) => {
                eprintln!("bench_load: GATE FAILED: {why}");
                return 1;
            }
        }
    }
    0
}
