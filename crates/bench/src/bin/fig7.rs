//! Regenerates Figure 7 of the paper: the Decrease weight pattern on Hera and
//! Coastal SSD — normalized makespan of the three algorithms, `A_DMV` action
//! counts, and the placement strip at the largest chain size.
//!
//! Usage: `cargo run --release -p chain2l-bench --bin fig7 [--quick|--coarse|--paper]`

#![forbid(unsafe_code)]

use chain2l_analysis::experiments::fig7;
use chain2l_analysis::Engine;
use chain2l_bench::{config_from_args, write_result_file};

fn main() {
    let config = config_from_args(std::env::args().skip(1));
    eprintln!("fig7: Decrease pattern on Hera and Coastal SSD, n in {:?}…", config.task_counts);
    let engine = Engine::new();
    let data = fig7(&config, &engine);
    eprintln!("fig7: solver engine — {}", engine.stats());
    let out = data.render();
    print!("{out}");
    if let Some(path) = write_result_file("fig7.txt", &out) {
        eprintln!("fig7: output written to {}", path.display());
    }
}
