//! Shared helpers for the figure-regeneration binaries and the Criterion
//! benchmarks of the `chain2l` reproduction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use chain2l_analysis::experiments::ExperimentConfig;
use std::fs;
use std::path::{Path, PathBuf};

/// Where the figure binaries write their CSV output (`results/` at the
/// workspace root, overridable with the `CHAIN2L_RESULTS_DIR` environment
/// variable).
pub fn results_dir() -> PathBuf {
    match std::env::var_os("CHAIN2L_RESULTS_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("results"),
    }
}

/// Selects the sweep granularity from command-line flags:
/// `--paper` (full 1..=50 sweep), `--quick` (tiny), default `--coarse`
/// (every 5 tasks up to 50 — the granularity used in EXPERIMENTS.md).
pub fn config_from_args<I: IntoIterator<Item = String>>(args: I) -> ExperimentConfig {
    let args: Vec<String> = args.into_iter().collect();
    if args.iter().any(|a| a == "--paper") {
        ExperimentConfig::paper()
    } else if args.iter().any(|a| a == "--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::coarse()
    }
}

/// Writes `content` to `<results_dir>/<name>`, creating the directory if
/// needed, and returns the path.  Errors are reported but not fatal (the
/// binaries also print everything to stdout).
pub fn write_result_file(name: &str, content: &str) -> Option<PathBuf> {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(name);
    match fs::write(&path, content) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Reads a previously written result file (used by tests).
pub fn read_result_file(path: &Path) -> std::io::Result<String> {
    fs::read_to_string(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_selection_from_flags() {
        let paper = config_from_args(vec!["--paper".to_string()]);
        assert_eq!(paper.task_counts.len(), 50);
        let quick = config_from_args(vec!["--quick".to_string()]);
        assert!(quick.max_tasks() <= 30);
        let coarse = config_from_args(Vec::<String>::new());
        assert_eq!(coarse.max_tasks(), 50);
        assert_eq!(coarse.task_counts.len(), 10);
    }

    #[test]
    fn result_files_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "chain2l-bench-test-{}-{:?}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::env::set_var("CHAIN2L_RESULTS_DIR", &dir);
        let path = write_result_file("test.csv", "a,b\n1,2\n").expect("writable temp dir");
        assert_eq!(read_result_file(&path).unwrap(), "a,b\n1,2\n");
        std::env::remove_var("CHAIN2L_RESULTS_DIR");
        let _ = fs::remove_dir_all(dir);
    }
}
