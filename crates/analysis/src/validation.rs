//! Cross-validation of the analytical optimizer against the Monte-Carlo
//! simulator.
//!
//! The paper's evaluation is purely analytical (it evaluates the closed-form
//! expectations); this module adds the missing sanity layer by re-simulating
//! the optimal schedules under randomly injected errors and reporting how
//! close the empirical mean makespan lands to the analytical prediction.

use crate::report::{fmt_f64, Table};
use chain2l_core::{optimize, Algorithm};
use chain2l_model::Scenario;
use chain2l_sim::runner::{run_monte_carlo, MonteCarloConfig};
use serde::{Deserialize, Serialize};

/// One validation measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Platform name.
    pub platform: String,
    /// Algorithm validated.
    pub algorithm: Algorithm,
    /// Number of tasks.
    pub n: usize,
    /// Analytical expected makespan (seconds).
    pub analytical: f64,
    /// Empirical mean makespan over the replications (seconds).
    pub simulated_mean: f64,
    /// Lower bound of the 95 % confidence interval.
    pub ci_low: f64,
    /// Upper bound of the 95 % confidence interval.
    pub ci_high: f64,
    /// `(simulated_mean − analytical) / analytical`.
    pub relative_error: f64,
    /// Number of replications.
    pub replications: usize,
}

impl ValidationRow {
    /// Whether the analytical value lies inside the (slack-widened) confidence
    /// interval of the empirical mean.
    pub fn agrees(&self, slack_standard_errors: f64) -> bool {
        let se = if self.replications > 0 {
            (self.ci_high - self.ci_low) / (2.0 * chain2l_sim::stats::Z_95)
        } else {
            0.0
        };
        let widen = slack_standard_errors * se;
        self.analytical >= self.ci_low - widen && self.analytical <= self.ci_high + widen
    }
}

/// Optimizes `scenario` with `algorithm`, then replays the optimal schedule
/// `replications` times in the simulator.
pub fn validate(
    scenario: &Scenario,
    algorithm: Algorithm,
    replications: usize,
    seed: u64,
    threads: usize,
) -> ValidationRow {
    let solution = optimize(scenario, algorithm);
    let report = run_monte_carlo(
        scenario,
        &solution.schedule,
        MonteCarloConfig { replications, seed, threads },
    )
    .expect("optimal schedules are valid");
    ValidationRow {
        platform: scenario.platform.name.clone(),
        algorithm,
        n: scenario.task_count(),
        analytical: solution.expected_makespan,
        simulated_mean: report.makespan.mean,
        ci_low: report.makespan.ci95_low,
        ci_high: report.makespan.ci95_high,
        relative_error: report.relative_error_vs(solution.expected_makespan),
        replications,
    }
}

/// Renders validation rows as a table.
pub fn validation_table(rows: &[ValidationRow]) -> Table {
    let mut table = Table::new(
        "Analytical expectation vs Monte-Carlo simulation",
        &[
            "platform",
            "algorithm",
            "n",
            "analytical",
            "simulated",
            "ci95_low",
            "ci95_high",
            "rel_error_%",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.platform.clone(),
            r.algorithm.label().to_string(),
            r.n.to_string(),
            fmt_f64(r.analytical, 1),
            fmt_f64(r.simulated_mean, 1),
            fmt_f64(r.ci_low, 1),
            fmt_f64(r.ci_high, 1),
            fmt_f64(r.relative_error * 100.0, 3),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain2l_model::platform::scr;
    use chain2l_model::WeightPattern;

    #[test]
    fn validation_row_agreement_logic() {
        let row = ValidationRow {
            platform: "Hera".into(),
            algorithm: Algorithm::TwoLevel,
            n: 10,
            analytical: 100.0,
            simulated_mean: 100.5,
            ci_low: 99.0,
            ci_high: 102.0,
            relative_error: 0.005,
            replications: 1000,
        };
        assert!(row.agrees(0.0));
        let far = ValidationRow { analytical: 200.0, ..row };
        assert!(!far.agrees(0.0));
    }

    #[test]
    fn two_level_prediction_agrees_with_simulation() {
        let scenario =
            Scenario::paper_setup(&scr::hera(), &WeightPattern::Uniform, 12, 25_000.0).unwrap();
        let row = validate(&scenario, Algorithm::TwoLevel, 15_000, 7, 4);
        assert!(
            row.agrees(2.0),
            "analytical {} outside CI [{}, {}]",
            row.analytical,
            row.ci_low,
            row.ci_high
        );
        assert!(row.relative_error.abs() < 0.01, "{row:?}");
    }

    #[test]
    fn validation_table_renders_rows() {
        let scenario =
            Scenario::paper_setup(&scr::atlas(), &WeightPattern::Uniform, 8, 25_000.0).unwrap();
        let row = validate(&scenario, Algorithm::SingleLevel, 2_000, 3, 2);
        let table = validation_table(&[row]);
        assert_eq!(table.row_count(), 1);
        assert!(table.to_csv().contains("Atlas,ADV*,8"));
    }
}
