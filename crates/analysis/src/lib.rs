//! # chain2l-analysis
//!
//! Experiment harness reproducing the evaluation (§IV) of *"Two-Level
//! Checkpointing and Verifications for Linear Task Graphs"* (Benoit, Cavelan,
//! Robert, Sun — IPDPSW/PDSEC 2016), plus the ablation sweeps and
//! simulation-based validation that a reproduction needs on top of the
//! original figures.
//!
//! * [`experiments`] — Figures 5–8 and Table I as runnable functions;
//! * [`figures`] — the data structures behind each figure panel;
//! * [`sweep`] — ablation sweeps (recall, cost ratio, error-rate scaling,
//!   tail accounting, heuristics);
//! * [`validation`] — Monte-Carlo validation of the analytical expectations;
//! * [`markdown`] — Markdown rendering used by EXPERIMENTS.md;
//! * [`report`] — CSV / aligned-text rendering.
//!
//! The figure and sweep builders all solve through a caller-supplied
//! strategy-routing [`Engine`] (re-exported from `chain2l-core`), so figure
//! panels and sweeps that revisit the same `(platform, pattern, n, T,
//! algorithm)` scenario solve it exactly once, and ascending prefix-stable
//! series extend finished DP tables instead of re-solving — every routing
//! strategy is bit-identical to a cold solve.
//!
//! # Example — a quick Figure 5 sweep
//!
//! ```
//! use chain2l_analysis::experiments::{makespan_series, ExperimentConfig};
//! use chain2l_core::{Algorithm, Engine};
//! use chain2l_model::platform::scr;
//! use chain2l_model::WeightPattern;
//!
//! let config = ExperimentConfig {
//!     total_weight: 25_000.0,
//!     task_counts: vec![5, 10],
//!     algorithms: Algorithm::paper_algorithms().to_vec(),
//! };
//! let series = makespan_series(&scr::hera(), &WeightPattern::Uniform, &config, &Engine::new());
//! assert_eq!(series.points.len(), 2);
//! // The two-level algorithm never loses to the single-level one.
//! for p in &series.points {
//!     assert!(p.value(Algorithm::TwoLevel) <= p.value(Algorithm::SingleLevel));
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod figures;
pub mod markdown;
pub mod report;
pub mod sweep;
pub mod validation;

pub use chain2l_core::cache::{CacheStats, SolutionCache, SolveRequest};
pub use chain2l_core::{Engine, EngineStats};
pub use experiments::{fig5, fig6, fig7, fig8, table1, ExperimentConfig};
pub use figures::{CountSeries, MakespanSeries, PlacementStrip};
pub use report::Table;
