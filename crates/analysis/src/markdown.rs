//! Markdown rendering of harness outputs.
//!
//! EXPERIMENTS.md and project reports embed the harness results as Markdown
//! tables; this module renders [`crate::report::Table`]s and a few composite
//! summaries in that format so the documentation can be regenerated from code
//! instead of being edited by hand.

use crate::figures::MakespanSeries;
use crate::report::{fmt_f64, Table};
use chain2l_core::sensitivity::SensitivityReport;
use chain2l_core::Algorithm;

/// Renders a [`Table`] as a GitHub-flavoured Markdown table.
pub fn table_to_markdown(table: &Table) -> String {
    let mut out = String::new();
    if !table.title().is_empty() {
        out.push_str(&format!("### {}\n\n", table.title()));
    }
    out.push_str(&format!("| {} |\n", table.columns().join(" | ")));
    out.push_str(&format!("|{}\n", table.columns().iter().map(|_| "---|").collect::<String>()));
    for row in table_rows(table) {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Extracts the rows of a table by round-tripping through its CSV rendering
/// (keeps [`Table`]'s internals private while letting the Markdown renderer
/// reuse them).
fn table_rows(table: &Table) -> Vec<Vec<String>> {
    table.to_csv().lines().skip(1).map(split_csv_line).collect()
}

/// Minimal CSV line splitter handling the quoting produced by `Table::to_csv`.
fn split_csv_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                current.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                cells.push(std::mem::take(&mut current));
            }
            other => current.push(other),
        }
    }
    cells.push(current);
    cells
}

/// Renders a makespan panel as a Markdown table with one gain column
/// (`worse` vs `better`), the format used in EXPERIMENTS.md.
pub fn makespan_series_to_markdown(
    series: &MakespanSeries,
    better: Algorithm,
    worse: Algorithm,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "### {} / {} — normalized makespan\n\n",
        series.platform, series.pattern
    ));
    out.push_str(&format!(
        "| n | {} | {} | gain |\n|---|---|---|---|\n",
        worse.label(),
        better.label()
    ));
    for point in &series.points {
        let (Some(w), Some(b)) = (point.value(worse), point.value(better)) else {
            continue;
        };
        let gain = if w > 0.0 { (w - b) / w * 100.0 } else { 0.0 };
        out.push_str(&format!(
            "| {} | {} | {} | {} % |\n",
            point.n,
            fmt_f64(w, 5),
            fmt_f64(b, 5),
            fmt_f64(gain, 2)
        ));
    }
    out
}

/// Renders a sensitivity report as a Markdown table sorted by influence.
pub fn sensitivity_to_markdown(report: &SensitivityReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "### Parameter sensitivity ({}, ±{} % perturbation)\n\n",
        report.algorithm.label(),
        fmt_f64(report.relative_step * 100.0, 1)
    ));
    out.push_str("| parameter | nominal value | elasticity |\n|---|---|---|\n");
    for entry in report.ranked() {
        out.push_str(&format!(
            "| {} | {:.4e} | {} |\n",
            entry.parameter.label(),
            entry.nominal_value,
            fmt_f64(entry.elasticity, 4)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain2l_core::sensitivity::analyze;
    use chain2l_model::platform::scr;
    use chain2l_model::{Scenario, WeightPattern};

    #[test]
    fn table_to_markdown_has_header_separator_and_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["x,y".into(), "z".into()]);
        let md = table_to_markdown(&t);
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "### demo");
        assert_eq!(lines[2], "| a | b |");
        assert_eq!(lines[3], "|---|---|");
        assert_eq!(lines[4], "| 1 | 2 |");
        assert_eq!(lines[5], "| x,y | z |");
    }

    #[test]
    fn csv_line_splitting_handles_quotes() {
        assert_eq!(split_csv_line("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_csv_line("\"x,y\",z"), vec!["x,y", "z"]);
        assert_eq!(split_csv_line("\"he said \"\"hi\"\"\",1"), vec!["he said \"hi\"", "1"]);
    }

    #[test]
    fn makespan_series_markdown_includes_gain_column() {
        use crate::figures::MakespanPoint;
        let series = MakespanSeries {
            platform: "Hera".into(),
            pattern: "uniform".into(),
            points: vec![MakespanPoint {
                n: 50,
                values: vec![(Algorithm::SingleLevel, 1.0635), (Algorithm::TwoLevel, 1.0449)],
            }],
        };
        let md = makespan_series_to_markdown(&series, Algorithm::TwoLevel, Algorithm::SingleLevel);
        assert!(md.contains("| 50 | 1.06350 | 1.04490 | 1.75 % |"));
    }

    #[test]
    fn sensitivity_markdown_lists_all_parameters() {
        let scenario =
            Scenario::paper_setup(&scr::hera(), &WeightPattern::Uniform, 10, 25_000.0).unwrap();
        let report = analyze(&scenario, Algorithm::TwoLevel, 0.05);
        let md = sensitivity_to_markdown(&report);
        for label in ["lambda_f", "lambda_s", "C_D", "C_M", "V*", "recall"] {
            assert!(md.contains(label), "missing {label} in\n{md}");
        }
        assert!(md.lines().count() >= 10);
    }
}
