//! Ablation sweeps beyond the paper's figures, and the parallel sweep grid.
//!
//! These sweeps quantify the design choices called out in DESIGN.md:
//!
//! * [`recall_sweep`] — how the optimal makespan and the number of partial
//!   verifications react to the detector recall `r`;
//! * [`partial_cost_sweep`] — sensitivity to the cost ratio `V*/V`
//!   (the paper fixes it at 100);
//! * [`rate_scaling_sweep`] — what happens as error rates grow towards
//!   exascale projections (both rates scaled by a common factor);
//! * [`tail_accounting_comparison`] — the `PaperExact` vs `Refined` tail
//!   accounting of §III-B (see DESIGN.md §3.3);
//! * [`heuristic_comparison`] — the optimal DP against the baseline
//!   placements of `chain2l_core::heuristics`.
//!
//! All of the above, plus the full `platform × pattern × n × total-weight`
//! grid runner ([`GridSpec`] / [`run_grid`]), execute their independent
//! scenario cells on a work-stealing thread pool (`rayon`): cells are claimed
//! dynamically by whichever worker is free, so one expensive `O(n⁶)` cell
//! does not serialise the sweep behind a static partition.  Results are
//! collected **in cell order**, and every cell that needs randomness (the
//! optional Monte-Carlo validation) derives its RNG seed deterministically
//! from the cell's coordinates via [`cell_seed`] — output is therefore
//! bit-identical across runs and independent of worker count.

//! Every sweep solves through a caller-supplied strategy-routing
//! [`Engine`]: run several sweeps (or a sweep plus the figure panels)
//! against one engine and every scenario they share is solved exactly once.
//! Engine routing is bit-identical to per-cell cold solves — the optimizers
//! are deterministic pure functions — so output stays byte-identical however
//! the engine serves the cells.

use crate::report::{fmt_f64, Table};
use chain2l_core::evaluator::expected_makespan;
use chain2l_core::heuristics;
use chain2l_core::{Algorithm, Engine, PartialCostModel, Solution};
use chain2l_model::{Action, Platform, Scenario, WeightPattern};
use chain2l_sim::runner::{run_monte_carlo, MonteCarloConfig};
use rayon::prelude::*;

/// Builds a paper-setup scenario, overriding nothing.
fn scenario(platform: &Platform, n: usize, total_weight: f64) -> Scenario {
    Scenario::paper_setup(platform, &WeightPattern::Uniform, n, total_weight)
        .expect("valid paper setup")
}

/// Derives the RNG seed of one grid cell from the sweep's base seed and the
/// cell's coordinates (FNV-1a over the canonical rendering).
///
/// The seed depends only on *what* the cell computes — never on worker
/// identity, claim order or grid shape — so adding rows to a sweep, changing
/// the thread count or re-running the binary leaves every other cell's
/// Monte-Carlo stream untouched.
pub fn cell_seed(
    base_seed: u64,
    platform: &str,
    pattern: &str,
    n: usize,
    total_weight: f64,
    algorithm: Algorithm,
) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(platform.as_bytes());
    eat(&[0xff]);
    eat(pattern.as_bytes());
    eat(&[0xff]);
    eat(&(n as u64).to_le_bytes());
    eat(&total_weight.to_bits().to_le_bytes());
    eat(algorithm.label().as_bytes());
    hash
}

/// Specification of a full sweep grid: the Cartesian product
/// `platforms × patterns × task_counts × total_weights × algorithms`.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Platforms to sweep (e.g. the four Table I machines).
    pub platforms: Vec<Platform>,
    /// Weight patterns to sweep.
    pub patterns: Vec<WeightPattern>,
    /// Chain lengths to sweep.
    pub task_counts: Vec<usize>,
    /// Total computational weights (the paper's `T`, seconds) to sweep.
    pub total_weights: Vec<f64>,
    /// Algorithms to run on every scenario.
    pub algorithms: Vec<Algorithm>,
    /// Base seed from which every cell's RNG stream is derived.
    pub base_seed: u64,
    /// Monte-Carlo replications per cell for simulation cross-validation;
    /// `0` skips simulation and keeps the grid purely analytical.
    pub validation_replications: usize,
    /// Worker threads used *inside* each cell's Monte-Carlo campaign
    /// (`run_monte_carlo` is multi-threaded and deterministic per
    /// `(seed, threads)` config).  Keep at `1` — the default — when the grid
    /// itself saturates the machine; raise it when one large campaign cell
    /// dominates the run.  Output is reproducible for a fixed spec either
    /// way, but changing this value changes which worker stream draws which
    /// replication, so it is part of the artifact's configuration.
    pub validation_threads: usize,
}

impl GridSpec {
    /// The §IV evaluation grid: all Table I platforms, the three paper
    /// patterns, `W = 25 000 s`, at the given chain lengths.
    pub fn paper(task_counts: Vec<usize>, base_seed: u64) -> Self {
        Self {
            platforms: chain2l_model::platform::scr::all(),
            patterns: vec![
                WeightPattern::Uniform,
                WeightPattern::Decrease,
                WeightPattern::high_low_default(),
            ],
            task_counts,
            total_weights: vec![25_000.0],
            algorithms: Algorithm::paper_algorithms().to_vec(),
            base_seed,
            validation_replications: 0,
            validation_threads: 1,
        }
    }

    /// Number of cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.platforms.len()
            * self.patterns.len()
            * self.task_counts.len()
            * self.total_weights.len()
            * self.algorithms.len()
    }
}

/// The outcome of one grid cell, in the deterministic grid order.
#[derive(Debug, Clone)]
pub struct GridRow {
    /// Platform name.
    pub platform: String,
    /// Pattern name.
    pub pattern: String,
    /// Number of tasks.
    pub n: usize,
    /// Total computational weight (seconds).
    pub total_weight: f64,
    /// Algorithm run on the cell.
    pub algorithm: Algorithm,
    /// Seed the cell's Monte-Carlo stream was derived from.
    pub seed: u64,
    /// The optimizer's solution for the cell.
    pub solution: Solution,
    /// Empirical mean makespan, when validation replications were requested.
    pub simulated_mean: Option<f64>,
    /// `(simulated − analytical) / analytical`, when simulated.
    pub relative_error: Option<f64>,
}

/// Runs every cell of the grid on the work-stealing pool, solving through
/// `engine`, and returns the rows **in grid order** (platforms outermost,
/// algorithms innermost).
///
/// With `validation_replications > 0` each cell also replays its optimal
/// schedule in the Monte-Carlo simulator, seeded by [`cell_seed`], making
/// the whole artifact reproducible bit-for-bit across runs and thread
/// counts.  The paper grid's cells are pairwise distinct, so within one grid
/// each fingerprint is solved exactly once; sharing the engine with other
/// sweeps or figure panels (as the `sweeps` binary does) additionally serves
/// their repeated scenarios from it.  Output is byte-identical however the
/// engine routes the solves.
pub fn run_grid(spec: &GridSpec, engine: &Engine) -> Vec<GridRow> {
    let mut cells = Vec::with_capacity(spec.cell_count());
    for platform in &spec.platforms {
        for pattern in &spec.patterns {
            for &n in &spec.task_counts {
                for &total_weight in &spec.total_weights {
                    for &algorithm in &spec.algorithms {
                        cells.push((platform, pattern, n, total_weight, algorithm));
                    }
                }
            }
        }
    }
    cells
        .into_par_iter()
        .map(|(platform, pattern, n, total_weight, algorithm)| {
            let seed = cell_seed(
                spec.base_seed,
                &platform.name,
                pattern.name(),
                n,
                total_weight,
                algorithm,
            );
            let s = Scenario::paper_setup(platform, pattern, n, total_weight)
                .expect("valid paper setup");
            let solution = engine.solve(&s, algorithm);
            let (simulated_mean, relative_error) = if spec.validation_replications > 0 {
                let report = run_monte_carlo(
                    &s,
                    &solution.schedule,
                    MonteCarloConfig {
                        replications: spec.validation_replications,
                        seed,
                        threads: spec.validation_threads.max(1),
                    },
                )
                .expect("optimal schedules are valid");
                (
                    Some(report.makespan.mean),
                    Some(report.relative_error_vs(solution.expected_makespan)),
                )
            } else {
                (None, None)
            };
            GridRow {
                platform: platform.name.clone(),
                pattern: pattern.name().to_string(),
                n,
                total_weight,
                algorithm,
                seed,
                solution: (*solution).clone(),
                simulated_mean,
                relative_error,
            }
        })
        .collect()
}

/// Renders grid rows as a table (one line per cell, grid order).
pub fn grid_table(rows: &[GridRow]) -> Table {
    let mut table = Table::new(
        "Sweep grid — platform × pattern × n × T",
        &[
            "platform",
            "pattern",
            "n",
            "T",
            "algorithm",
            "normalized_makespan",
            "disk",
            "memory",
            "guaranteed",
            "partial",
            "sim_rel_error_%",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.platform.clone(),
            r.pattern.clone(),
            r.n.to_string(),
            fmt_f64(r.total_weight, 0),
            r.algorithm.label().to_string(),
            fmt_f64(r.solution.normalized_makespan, 5),
            r.solution.counts.disk_checkpoints.to_string(),
            r.solution.counts.memory_checkpoints.to_string(),
            r.solution.counts.guaranteed_verifications.to_string(),
            r.solution.counts.partial_verifications.to_string(),
            match r.relative_error {
                Some(e) => fmt_f64(e * 100.0, 3),
                None => "-".to_string(),
            },
        ]);
    }
    table
}

/// Sweeps the partial-verification recall `r` and reports the optimal `A_DMV`
/// makespan and the number of partial verifications it places.
pub fn recall_sweep(
    platform: &Platform,
    n: usize,
    total_weight: f64,
    recalls: &[f64],
    engine: &Engine,
) -> Table {
    let mut table = Table::new(
        format!("Recall sweep — {} (n = {n})", platform.name),
        &["recall", "normalized_makespan", "partial_verifs", "guaranteed_verifs"],
    );
    let rows: Vec<Vec<String>> = recalls
        .par_iter()
        .map(|&r| {
            let mut s = scenario(platform, n, total_weight);
            s.costs.partial_recall = r;
            let sol = engine.solve(&s, Algorithm::TwoLevelPartial);
            vec![
                fmt_f64(r, 2),
                fmt_f64(sol.normalized_makespan, 5),
                sol.counts.partial_verifications.to_string(),
                sol.counts.guaranteed_verifications.to_string(),
            ]
        })
        .collect();
    for row in rows {
        table.push_row(row);
    }
    table
}

/// Sweeps the cost ratio `V*/V` (the paper uses 100).
pub fn partial_cost_sweep(
    platform: &Platform,
    n: usize,
    total_weight: f64,
    ratios: &[f64],
    engine: &Engine,
) -> Table {
    let mut table = Table::new(
        format!("Partial-verification cost sweep — {} (n = {n})", platform.name),
        &["cost_ratio", "normalized_makespan", "partial_verifs"],
    );
    let rows: Vec<Vec<String>> = ratios
        .par_iter()
        .map(|&ratio| {
            let mut s = scenario(platform, n, total_weight);
            s.costs.partial_verification = s.costs.guaranteed_verification / ratio;
            let sol = engine.solve(&s, Algorithm::TwoLevelPartial);
            vec![
                fmt_f64(ratio, 1),
                fmt_f64(sol.normalized_makespan, 5),
                sol.counts.partial_verifications.to_string(),
            ]
        })
        .collect();
    for row in rows {
        table.push_row(row);
    }
    table
}

/// Scales both error rates by each factor and reports how the three
/// algorithms and their placements respond.
pub fn rate_scaling_sweep(
    platform: &Platform,
    n: usize,
    total_weight: f64,
    factors: &[f64],
    engine: &Engine,
) -> Table {
    let mut table = Table::new(
        format!("Error-rate scaling sweep — {} (n = {n})", platform.name),
        &["rate_factor", "ADV*", "ADMV*", "ADMV", "ADMV_memory_ckpts", "ADMV_partial_verifs"],
    );
    let rows: Vec<Vec<String>> = factors
        .par_iter()
        .map(|&factor| {
            let scaled = platform.with_scaled_rates(factor).expect("valid scaling");
            let s = scenario(&scaled, n, total_weight);
            let single = engine.solve(&s, Algorithm::SingleLevel);
            let two = engine.solve(&s, Algorithm::TwoLevel);
            let full = engine.solve(&s, Algorithm::TwoLevelPartial);
            vec![
                fmt_f64(factor, 1),
                fmt_f64(single.normalized_makespan, 5),
                fmt_f64(two.normalized_makespan, 5),
                fmt_f64(full.normalized_makespan, 5),
                full.counts.memory_checkpoints.to_string(),
                full.counts.partial_verifications.to_string(),
            ]
        })
        .collect();
    for row in rows {
        table.push_row(row);
    }
    table
}

/// Compares the `PaperExact` and `Refined` tail accounting of the §III-B
/// algorithm on every requested platform.
pub fn tail_accounting_comparison(
    platforms: &[Platform],
    n: usize,
    total_weight: f64,
    engine: &Engine,
) -> Table {
    let mut table = Table::new(
        format!("Tail-accounting ablation (n = {n})"),
        &["platform", "ADMV_paper", "ADMV_refined", "relative_gap"],
    );
    let rows: Vec<Vec<String>> = platforms
        .par_iter()
        .map(|platform| {
            let s = scenario(platform, n, total_weight);
            let paper = engine.solve(&s, Algorithm::TwoLevelPartial);
            let refined = engine.solve(&s, Algorithm::TwoLevelPartialRefined);
            let gap =
                (paper.expected_makespan - refined.expected_makespan) / refined.expected_makespan;
            vec![
                platform.name.clone(),
                fmt_f64(paper.expected_makespan, 2),
                fmt_f64(refined.expected_makespan, 2),
                format!("{:.2e}", gap),
            ]
        })
        .collect();
    for row in rows {
        table.push_row(row);
    }
    table
}

/// Compares the optimal two-level placement against the baseline heuristics
/// (the heuristic placements themselves are closed-form, not DP solves).
pub fn heuristic_comparison(
    platform: &Platform,
    n: usize,
    total_weight: f64,
    engine: &Engine,
) -> Table {
    let s = scenario(platform, n, total_weight);
    let optimal = engine.solve(&s, Algorithm::TwoLevel);
    let model = PartialCostModel::Refined;

    let mut table = Table::new(
        format!("Heuristic comparison — {} (n = {n})", platform.name),
        &["placement", "normalized_makespan", "overhead_vs_optimal_%"],
    );
    let mut push = |name: &str, value: f64| {
        let overhead = (value - optimal.expected_makespan) / optimal.expected_makespan * 100.0;
        table.push_row(vec![
            name.to_string(),
            fmt_f64(value / s.error_free_time(), 5),
            fmt_f64(overhead, 2),
        ]);
    };

    push("optimal ADMV*", optimal.expected_makespan);
    let cases: Vec<(&str, chain2l_model::Schedule)> = vec![
        ("no resilience", heuristics::no_resilience(&s)),
        ("disk ckpt every task", heuristics::checkpoint_every_task(&s)),
        ("memory ckpt every task", heuristics::memory_checkpoint_every_task(&s)),
        ("Young/Daly periods", heuristics::young_daly(&s).expect("valid scenario")),
        (
            "best periodic memory ckpt",
            heuristics::best_periodic(&s, Action::MemoryCheckpoint, model).0,
        ),
    ];
    let values: Vec<(&str, f64)> = cases
        .par_iter()
        .map(|(name, schedule)| {
            let value = expected_makespan(&s, schedule, model).expect("valid heuristic schedule");
            (*name, value)
        })
        .collect();
    for (name, value) in values {
        push(name, value);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain2l_model::platform::scr;

    const W: f64 = 25_000.0;

    #[test]
    fn recall_sweep_improves_with_higher_recall() {
        let table = recall_sweep(&scr::coastal_ssd(), 20, W, &[0.2, 0.5, 0.8, 1.0], &Engine::new());
        assert_eq!(table.row_count(), 4);
        let csv = table.to_csv();
        // Makespans are non-increasing as recall grows: parse and check.
        let values: Vec<f64> =
            csv.lines().skip(1).map(|l| l.split(',').nth(1).unwrap().parse().unwrap()).collect();
        for w in values.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{values:?}");
        }
    }

    #[test]
    fn partial_cost_sweep_prefers_cheaper_partials() {
        let table = partial_cost_sweep(
            &scr::coastal_ssd(),
            20,
            W,
            &[1.0, 10.0, 100.0, 1000.0],
            &Engine::new(),
        );
        let csv = table.to_csv();
        let values: Vec<f64> =
            csv.lines().skip(1).map(|l| l.split(',').nth(1).unwrap().parse().unwrap()).collect();
        // Cheaper partial verifications (larger ratio) never hurt.
        for w in values.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{values:?}");
        }
    }

    #[test]
    fn rate_scaling_increases_overhead_and_actions() {
        let table = rate_scaling_sweep(&scr::hera(), 20, W, &[1.0, 10.0, 50.0], &Engine::new());
        let csv = table.to_csv();
        let rows: Vec<Vec<String>> =
            csv.lines().skip(1).map(|l| l.split(',').map(|s| s.to_string()).collect()).collect();
        let makespans: Vec<f64> = rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(makespans.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{makespans:?}");
        let mem_ckpts: Vec<usize> = rows.iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(mem_ckpts.last().unwrap() >= mem_ckpts.first().unwrap(), "{mem_ckpts:?}");
    }

    #[test]
    fn tail_accounting_gap_is_tiny_on_paper_platforms() {
        let table = tail_accounting_comparison(&scr::all(), 15, W, &Engine::new());
        assert_eq!(table.row_count(), 4);
        // The two accountings differ only in how the closing guaranteed
        // verification of an interval is charged; neither dominates the other
        // in general, but the gap is far below anything the figures resolve.
        for line in table.to_csv().lines().skip(1) {
            let gap: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!(gap.abs() < 1e-3, "gap {gap} too large: {line}");
        }
    }

    #[test]
    fn cell_seed_depends_on_every_coordinate() {
        let base = cell_seed(1, "Hera", "uniform", 10, W, Algorithm::TwoLevel);
        let variants = [
            cell_seed(2, "Hera", "uniform", 10, W, Algorithm::TwoLevel),
            cell_seed(1, "Atlas", "uniform", 10, W, Algorithm::TwoLevel),
            cell_seed(1, "Hera", "decrease", 10, W, Algorithm::TwoLevel),
            cell_seed(1, "Hera", "uniform", 11, W, Algorithm::TwoLevel),
            cell_seed(1, "Hera", "uniform", 10, W + 1.0, Algorithm::TwoLevel),
            cell_seed(1, "Hera", "uniform", 10, W, Algorithm::SingleLevel),
        ];
        for v in variants {
            assert_ne!(v, base);
        }
        // ... and on nothing else.
        assert_eq!(base, cell_seed(1, "Hera", "uniform", 10, W, Algorithm::TwoLevel));
    }

    #[test]
    fn grid_covers_every_cell_in_order_and_is_reproducible() {
        let spec = GridSpec { validation_replications: 60, ..GridSpec::paper(vec![3, 6], 42) };
        let rows = run_grid(&spec, &Engine::new());
        assert_eq!(rows.len(), spec.cell_count());
        // Grid order: platforms outermost, algorithms innermost.
        assert_eq!(rows[0].platform, "Hera");
        assert_eq!(rows[0].n, 3);
        assert_eq!(rows[1].n, 3);
        assert_ne!(rows[0].algorithm, rows[1].algorithm);
        assert_eq!(rows.last().unwrap().platform, "Coastal SSD");
        // Every cell draws from its own stream…
        let seeds: std::collections::HashSet<u64> = rows.iter().map(|r| r.seed).collect();
        assert_eq!(seeds.len(), rows.len());
        // …and a second run reproduces the artifact bit-for-bit, including
        // the Monte-Carlo means.
        let again = run_grid(&spec, &Engine::new());
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.solution.expected_makespan, b.solution.expected_makespan);
            assert_eq!(a.simulated_mean, b.simulated_mean);
            assert_eq!(a.relative_error, b.relative_error);
        }
        assert_eq!(grid_table(&rows).to_csv(), grid_table(&again).to_csv());
    }

    #[test]
    fn grid_validation_tracks_analytical_values() {
        let spec = GridSpec {
            platforms: vec![scr::hera()],
            patterns: vec![chain2l_model::WeightPattern::Uniform],
            task_counts: vec![10],
            total_weights: vec![W],
            algorithms: vec![Algorithm::TwoLevel],
            base_seed: 7,
            validation_replications: 4_000,
            validation_threads: 1,
        };
        let rows = run_grid(&spec, &Engine::new());
        assert_eq!(rows.len(), 1);
        let err = rows[0].relative_error.expect("validated cell");
        assert!(err.abs() < 0.02, "simulation off by {err}");
    }

    #[test]
    fn grid_cells_simulate_multi_threaded_and_stay_reproducible() {
        // One large campaign cell no longer simulates single-threaded: the
        // in-cell Monte-Carlo runs on `validation_threads` workers, stays
        // statistically consistent with the analytical value, and two runs
        // of the same spec are bit-identical.
        let spec = GridSpec {
            platforms: vec![scr::hera()],
            patterns: vec![chain2l_model::WeightPattern::Uniform],
            task_counts: vec![10],
            total_weights: vec![W],
            algorithms: vec![Algorithm::TwoLevel],
            base_seed: 7,
            validation_replications: 4_000,
            validation_threads: 4,
        };
        let rows = run_grid(&spec, &Engine::new());
        let err = rows[0].relative_error.expect("validated cell");
        assert!(err.abs() < 0.02, "simulation off by {err}");
        let again = run_grid(&spec, &Engine::new());
        assert_eq!(rows[0].simulated_mean, again[0].simulated_mean);
        // The worker-stream partition is part of the configuration: a
        // single-threaded run of the same seed draws different streams.
        let single = run_grid(&GridSpec { validation_threads: 1, ..spec }, &Engine::new());
        assert_ne!(rows[0].simulated_mean, single[0].simulated_mean);
        assert!(
            (rows[0].simulated_mean.unwrap() - single[0].simulated_mean.unwrap()).abs() < 200.0
        );
    }

    #[test]
    fn heuristic_comparison_puts_optimal_first_with_zero_overhead() {
        let table = heuristic_comparison(&scr::hera(), 20, W, &Engine::new());
        assert!(table.row_count() >= 5);
        let csv = table.to_csv();
        let first = csv.lines().nth(1).unwrap();
        assert!(first.starts_with("optimal"));
        let overhead: f64 = first.split(',').nth(2).unwrap().parse().unwrap();
        assert_eq!(overhead, 0.0);
        // Every heuristic has non-negative overhead.
        for line in csv.lines().skip(2) {
            let overhead: f64 = line.split(',').nth(2).unwrap().parse().unwrap();
            assert!(overhead >= -1e-9, "{line}");
        }
    }
}
