//! Ablation sweeps beyond the paper's figures.
//!
//! These sweeps quantify the design choices called out in DESIGN.md:
//!
//! * [`recall_sweep`] — how the optimal makespan and the number of partial
//!   verifications react to the detector recall `r`;
//! * [`partial_cost_sweep`] — sensitivity to the cost ratio `V*/V`
//!   (the paper fixes it at 100);
//! * [`rate_scaling_sweep`] — what happens as error rates grow towards
//!   exascale projections (both rates scaled by a common factor);
//! * [`tail_accounting_comparison`] — the `PaperExact` vs `Refined` tail
//!   accounting of §III-B (see DESIGN.md §3.3);
//! * [`heuristic_comparison`] — the optimal DP against the baseline
//!   placements of `chain2l_core::heuristics`.

use crate::report::{fmt_f64, Table};
use chain2l_core::evaluator::expected_makespan;
use chain2l_core::heuristics;
use chain2l_core::{optimize, Algorithm, PartialCostModel};
use chain2l_model::{Action, Platform, Scenario, WeightPattern};

/// Builds a paper-setup scenario, overriding nothing.
fn scenario(platform: &Platform, n: usize, total_weight: f64) -> Scenario {
    Scenario::paper_setup(platform, &WeightPattern::Uniform, n, total_weight)
        .expect("valid paper setup")
}

/// Sweeps the partial-verification recall `r` and reports the optimal `A_DMV`
/// makespan and the number of partial verifications it places.
pub fn recall_sweep(platform: &Platform, n: usize, total_weight: f64, recalls: &[f64]) -> Table {
    let mut table = Table::new(
        format!("Recall sweep — {} (n = {n})", platform.name),
        &["recall", "normalized_makespan", "partial_verifs", "guaranteed_verifs"],
    );
    for &r in recalls {
        let mut s = scenario(platform, n, total_weight);
        s.costs.partial_recall = r;
        let sol = optimize(&s, Algorithm::TwoLevelPartial);
        table.push_row(vec![
            fmt_f64(r, 2),
            fmt_f64(sol.normalized_makespan, 5),
            sol.counts.partial_verifications.to_string(),
            sol.counts.guaranteed_verifications.to_string(),
        ]);
    }
    table
}

/// Sweeps the cost ratio `V*/V` (the paper uses 100).
pub fn partial_cost_sweep(
    platform: &Platform,
    n: usize,
    total_weight: f64,
    ratios: &[f64],
) -> Table {
    let mut table = Table::new(
        format!("Partial-verification cost sweep — {} (n = {n})", platform.name),
        &["cost_ratio", "normalized_makespan", "partial_verifs"],
    );
    for &ratio in ratios {
        let mut s = scenario(platform, n, total_weight);
        s.costs.partial_verification = s.costs.guaranteed_verification / ratio;
        let sol = optimize(&s, Algorithm::TwoLevelPartial);
        table.push_row(vec![
            fmt_f64(ratio, 1),
            fmt_f64(sol.normalized_makespan, 5),
            sol.counts.partial_verifications.to_string(),
        ]);
    }
    table
}

/// Scales both error rates by each factor and reports how the three
/// algorithms and their placements respond.
pub fn rate_scaling_sweep(
    platform: &Platform,
    n: usize,
    total_weight: f64,
    factors: &[f64],
) -> Table {
    let mut table = Table::new(
        format!("Error-rate scaling sweep — {} (n = {n})", platform.name),
        &["rate_factor", "ADV*", "ADMV*", "ADMV", "ADMV_memory_ckpts", "ADMV_partial_verifs"],
    );
    for &factor in factors {
        let scaled = platform.with_scaled_rates(factor).expect("valid scaling");
        let s = scenario(&scaled, n, total_weight);
        let single = optimize(&s, Algorithm::SingleLevel);
        let two = optimize(&s, Algorithm::TwoLevel);
        let full = optimize(&s, Algorithm::TwoLevelPartial);
        table.push_row(vec![
            fmt_f64(factor, 1),
            fmt_f64(single.normalized_makespan, 5),
            fmt_f64(two.normalized_makespan, 5),
            fmt_f64(full.normalized_makespan, 5),
            full.counts.memory_checkpoints.to_string(),
            full.counts.partial_verifications.to_string(),
        ]);
    }
    table
}

/// Compares the `PaperExact` and `Refined` tail accounting of the §III-B
/// algorithm on every requested platform.
pub fn tail_accounting_comparison(platforms: &[Platform], n: usize, total_weight: f64) -> Table {
    let mut table = Table::new(
        format!("Tail-accounting ablation (n = {n})"),
        &["platform", "ADMV_paper", "ADMV_refined", "relative_gap"],
    );
    for platform in platforms {
        let s = scenario(platform, n, total_weight);
        let paper = optimize(&s, Algorithm::TwoLevelPartial);
        let refined = optimize(&s, Algorithm::TwoLevelPartialRefined);
        let gap = (paper.expected_makespan - refined.expected_makespan)
            / refined.expected_makespan;
        table.push_row(vec![
            platform.name.clone(),
            fmt_f64(paper.expected_makespan, 2),
            fmt_f64(refined.expected_makespan, 2),
            format!("{:.2e}", gap),
        ]);
    }
    table
}

/// Compares the optimal two-level placement against the baseline heuristics.
pub fn heuristic_comparison(platform: &Platform, n: usize, total_weight: f64) -> Table {
    let s = scenario(platform, n, total_weight);
    let optimal = optimize(&s, Algorithm::TwoLevel);
    let model = PartialCostModel::Refined;

    let mut table = Table::new(
        format!("Heuristic comparison — {} (n = {n})", platform.name),
        &["placement", "normalized_makespan", "overhead_vs_optimal_%"],
    );
    let mut push = |name: &str, value: f64| {
        let overhead = (value - optimal.expected_makespan) / optimal.expected_makespan * 100.0;
        table.push_row(vec![
            name.to_string(),
            fmt_f64(value / s.error_free_time(), 5),
            fmt_f64(overhead, 2),
        ]);
    };

    push("optimal ADMV*", optimal.expected_makespan);
    let cases: Vec<(&str, chain2l_model::Schedule)> = vec![
        ("no resilience", heuristics::no_resilience(&s)),
        ("disk ckpt every task", heuristics::checkpoint_every_task(&s)),
        ("memory ckpt every task", heuristics::memory_checkpoint_every_task(&s)),
        ("Young/Daly periods", heuristics::young_daly(&s).expect("valid scenario")),
        (
            "best periodic memory ckpt",
            heuristics::best_periodic(&s, Action::MemoryCheckpoint, model).0,
        ),
    ];
    for (name, schedule) in cases {
        let value = expected_makespan(&s, &schedule, model).expect("valid heuristic schedule");
        push(name, value);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain2l_model::platform::scr;

    const W: f64 = 25_000.0;

    #[test]
    fn recall_sweep_improves_with_higher_recall() {
        let table = recall_sweep(&scr::coastal_ssd(), 20, W, &[0.2, 0.5, 0.8, 1.0]);
        assert_eq!(table.row_count(), 4);
        let csv = table.to_csv();
        // Makespans are non-increasing as recall grows: parse and check.
        let values: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        for w in values.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{values:?}");
        }
    }

    #[test]
    fn partial_cost_sweep_prefers_cheaper_partials() {
        let table = partial_cost_sweep(&scr::coastal_ssd(), 20, W, &[1.0, 10.0, 100.0, 1000.0]);
        let csv = table.to_csv();
        let values: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        // Cheaper partial verifications (larger ratio) never hurt.
        for w in values.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{values:?}");
        }
    }

    #[test]
    fn rate_scaling_increases_overhead_and_actions() {
        let table = rate_scaling_sweep(&scr::hera(), 20, W, &[1.0, 10.0, 50.0]);
        let csv = table.to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|s| s.to_string()).collect())
            .collect();
        let makespans: Vec<f64> = rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(makespans.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{makespans:?}");
        let mem_ckpts: Vec<usize> = rows.iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(
            mem_ckpts.last().unwrap() >= mem_ckpts.first().unwrap(),
            "{mem_ckpts:?}"
        );
    }

    #[test]
    fn tail_accounting_gap_is_tiny_on_paper_platforms() {
        let table = tail_accounting_comparison(&scr::all(), 15, W);
        assert_eq!(table.row_count(), 4);
        // The two accountings differ only in how the closing guaranteed
        // verification of an interval is charged; neither dominates the other
        // in general, but the gap is far below anything the figures resolve.
        for line in table.to_csv().lines().skip(1) {
            let gap: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!(gap.abs() < 1e-3, "gap {gap} too large: {line}");
        }
    }

    #[test]
    fn heuristic_comparison_puts_optimal_first_with_zero_overhead() {
        let table = heuristic_comparison(&scr::hera(), 20, W);
        assert!(table.row_count() >= 5);
        let csv = table.to_csv();
        let first = csv.lines().nth(1).unwrap();
        assert!(first.starts_with("optimal"));
        let overhead: f64 = first.split(',').nth(2).unwrap().parse().unwrap();
        assert_eq!(overhead, 0.0);
        // Every heuristic has non-negative overhead.
        for line in csv.lines().skip(2) {
            let overhead: f64 = line.split(',').nth(2).unwrap().parse().unwrap();
            assert!(overhead >= -1e-9, "{line}");
        }
    }
}
