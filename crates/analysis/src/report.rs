//! Report rendering: CSV and aligned ASCII tables.
//!
//! The experiment harness produces tabular data (one row per `(platform, n,
//! algorithm)` combination, one table per figure panel).  To keep the
//! dependency set at the approved crates, CSV writing and table alignment are
//! implemented here rather than pulled from a formatting crate.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple in-memory table: named columns plus rows of cells.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    /// Panics if the number of cells does not match the number of columns.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Appends a row of displayable values.
    pub fn push_display_row(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as CSV (header line + one line per row).  Cells
    /// containing commas, quotes or newlines are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "{}",
            self.columns.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(",")
        )
        .expect("writing to String cannot fail");
        for row in &self.rows {
            writeln!(out, "{}", row.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(","))
                .expect("writing to String cannot fail");
        }
        out
    }

    /// Renders the table as an aligned, human-readable text block.
    pub fn to_aligned_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            writeln!(out, "# {}", self.title).expect("writing to String cannot fail");
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        writeln!(out, "{}", header.join("  ")).expect("writing to String cannot fail");
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(out, "{}", rule.join("  ")).expect("writing to String cannot fail");
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            writeln!(out, "{}", cells.join("  ")).expect("writing to String cannot fail");
        }
        out
    }

    /// Writes the CSV rendering to a file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        fs::write(path, self.to_csv())
    }
}

fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats a float with a fixed number of decimals, trimming `-0`.
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    let s = format!("{value:.decimals$}");
    if s.starts_with("-0.") && s[3..].chars().all(|c| c == '0') {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("demo", &["platform", "n", "makespan"]);
        t.push_row(vec!["Hera".into(), "10".into(), "1.0452".into()]);
        t.push_row(vec!["Coastal SSD".into(), "50".into(), "1.1310".into()]);
        t
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "platform,n,makespan");
        assert_eq!(lines[1], "Hera,10,1.0452");
        assert!(lines[2].starts_with("Coastal SSD"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn aligned_text_pads_columns() {
        let text = sample_table().to_aligned_text();
        let lines: Vec<&str> = text.lines().collect();
        // title, header, rule, two rows = 5 lines.
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("# demo"));
        // All data lines have equal length (aligned).
        let widths: Vec<usize> = text.lines().skip(1).map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn push_display_row_formats_values() {
        let mut t = Table::new("", &["n", "value"]);
        t.push_display_row(&[&42usize, &1.25f64]);
        assert_eq!(t.row_count(), 1);
        assert!(t.to_csv().contains("42,1.25"));
    }

    #[test]
    fn write_csv_creates_the_file() {
        let path = std::env::temp_dir().join(format!(
            "chain2l-report-test-{}-{:?}.csv",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        sample_table().write_csv(&path).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains("Hera"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn fmt_f64_fixed_decimals() {
        assert_eq!(fmt_f64(1.23456, 3), "1.235");
        assert_eq!(fmt_f64(-0.00001, 3), "0.000");
        assert_eq!(fmt_f64(2.0, 0), "2");
    }
}
