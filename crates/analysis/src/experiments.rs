//! The experiments of §IV of the paper, as runnable harness functions.
//!
//! Each `figN` function reproduces the data behind one figure:
//!
//! * [`fig5`] — Figure 5: for each of the four Table I platforms (Uniform
//!   pattern), the normalized makespan of `A_DV*`, `A_DMV*`, `A_DMV` vs. the
//!   number of tasks, plus the count panels of each algorithm;
//! * [`fig6`] — Figure 6: the placement strips of `A_DMV` at `n = 50` on each
//!   platform (Uniform pattern);
//! * [`fig7`] — Figure 7: Hera and Coastal SSD with the **Decrease** pattern
//!   (makespan panel, `A_DMV` count panel, placement strip at `n = 50`);
//! * [`fig8`] — Figure 8: the same three panels with the **HighLow** pattern;
//! * [`table1`] — Table I: the platform parameters (with the derived MTBFs
//!   quoted in the paper's prose).
//!
//! The number of task counts evaluated is controlled by [`ExperimentConfig`]:
//! `paper()` sweeps every `n` from 1 to 50 like the original plots, `quick()`
//! uses a small subset so the harness stays fast in debug builds and CI.
//!
//! Every builder solves through a caller-supplied strategy-routing
//! [`Engine`]: share one engine across the figure entry points ([`fig5`],
//! [`fig7`], [`fig8`]) and each distinct `(platform, pattern, n, algorithm)`
//! cell is solved exactly once — the count panels and placement strips are
//! served from the makespan panel's solves, which the engine's statistics
//! prove.  Routing is bit-identical to per-cell cold solves, so sharing an
//! engine can only skip work, never change a figure.

use crate::figures::{CountPoint, CountSeries, MakespanPoint, MakespanSeries, PlacementStrip};
use crate::report::{fmt_f64, Table};
use chain2l_core::cache::SolveRequest;
use chain2l_core::{optimize, Algorithm, Engine, Solution};
use chain2l_model::platform::scr;
use chain2l_model::{Platform, Scenario, WeightPattern};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Total computational weight used throughout §IV (seconds).
pub const PAPER_TOTAL_WEIGHT: f64 = 25_000.0;
/// Largest chain evaluated in the paper's figures.
pub const PAPER_MAX_TASKS: usize = 50;

/// Controls how much of the parameter space an experiment sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Total computational weight distributed over the chain (seconds).
    pub total_weight: f64,
    /// Task counts to evaluate (the x-axis of the figures).
    pub task_counts: Vec<usize>,
    /// Algorithms to compare.
    pub algorithms: Vec<Algorithm>,
}

impl ExperimentConfig {
    /// The full sweep of the paper: every `n` from 1 to 50.
    pub fn paper() -> Self {
        Self {
            total_weight: PAPER_TOTAL_WEIGHT,
            task_counts: (1..=PAPER_MAX_TASKS).collect(),
            algorithms: Algorithm::paper_algorithms().to_vec(),
        }
    }

    /// A light sweep (a handful of task counts, capped at 30 tasks) that keeps
    /// the `O(n⁶)` algorithm affordable in debug builds and CI.
    pub fn quick() -> Self {
        Self {
            total_weight: PAPER_TOTAL_WEIGHT,
            task_counts: vec![2, 5, 10, 15, 20, 25, 30],
            algorithms: Algorithm::paper_algorithms().to_vec(),
        }
    }

    /// A sweep at the paper's plot granularity but sub-sampled every 5 tasks.
    pub fn coarse() -> Self {
        Self {
            total_weight: PAPER_TOTAL_WEIGHT,
            task_counts: (1..=10).map(|i| i * 5).collect(),
            algorithms: Algorithm::paper_algorithms().to_vec(),
        }
    }

    /// Largest task count in the sweep.
    pub fn max_tasks(&self) -> usize {
        self.task_counts.iter().copied().max().unwrap_or(0)
    }
}

/// Runs one `(platform, pattern, n, algorithm)` cell of the evaluation with
/// a private, throw-away solver (no sharing across cells).
pub fn run_cell(
    platform: &Platform,
    pattern: &WeightPattern,
    n: usize,
    total_weight: f64,
    algorithm: Algorithm,
) -> Solution {
    let scenario = Scenario::paper_setup(platform, pattern, n, total_weight)
        .expect("paper setup parameters are valid");
    optimize(&scenario, algorithm)
}

/// Like [`run_cell`], but routed through (and recorded in) `engine`.
pub fn run_cell_on(
    platform: &Platform,
    pattern: &WeightPattern,
    n: usize,
    total_weight: f64,
    algorithm: Algorithm,
    engine: &Engine,
) -> Arc<Solution> {
    let scenario = Scenario::paper_setup(platform, pattern, n, total_weight)
        .expect("paper setup parameters are valid");
    engine.solve(&scenario, algorithm)
}

/// The batch of solve requests behind one panel: every `(n, algorithm)` cell
/// of the config, in sweep order (task counts outermost).
fn panel_requests(
    platform: &Platform,
    pattern: &WeightPattern,
    config: &ExperimentConfig,
    algorithms: &[Algorithm],
) -> Vec<SolveRequest> {
    config
        .task_counts
        .iter()
        .flat_map(|&n| algorithms.iter().map(move |&a| (n, a)))
        .map(|(n, a)| {
            let scenario = Scenario::paper_setup(platform, pattern, n, config.total_weight)
                .expect("paper setup parameters are valid");
            SolveRequest::new(scenario, a)
        })
        .collect()
}

/// Builds the normalized-makespan panel for one platform and pattern,
/// solving through (and recording in) `engine`.
///
/// The `n × algorithm` cells are independent, so they are submitted as one
/// batch and the misses are solved on the work-stealing pool; the results
/// come back in sweep order, keeping the panel deterministic.
pub fn makespan_series(
    platform: &Platform,
    pattern: &WeightPattern,
    config: &ExperimentConfig,
    engine: &Engine,
) -> MakespanSeries {
    let algorithms = config.algorithms.len();
    let points = if algorithms == 0 {
        config.task_counts.iter().map(|&n| MakespanPoint { n, values: Vec::new() }).collect()
    } else {
        let requests = panel_requests(platform, pattern, config, &config.algorithms);
        let solutions = engine.solve_batch(&requests);
        let values: Vec<(Algorithm, f64)> = requests
            .iter()
            .zip(&solutions)
            .map(|(req, sol)| (req.algorithm, sol.normalized_makespan))
            .collect();
        config
            .task_counts
            .iter()
            .zip(values.chunks(algorithms))
            .map(|(&n, chunk)| MakespanPoint { n, values: chunk.to_vec() })
            .collect()
    };
    MakespanSeries { platform: platform.name.clone(), pattern: pattern.name().to_string(), points }
}

/// Builds the count panel of one algorithm for one platform and pattern,
/// solving through `engine` on the work-stealing pool.
pub fn count_series(
    platform: &Platform,
    pattern: &WeightPattern,
    algorithm: Algorithm,
    config: &ExperimentConfig,
    engine: &Engine,
) -> CountSeries {
    let requests = panel_requests(platform, pattern, config, &[algorithm]);
    let solutions = engine.solve_batch(&requests);
    let points = config
        .task_counts
        .iter()
        .zip(&solutions)
        .map(|(&n, sol)| CountPoint { n, counts: sol.counts })
        .collect();
    CountSeries {
        platform: platform.name.clone(),
        pattern: pattern.name().to_string(),
        algorithm,
        points,
    }
}

/// Builds the placement strip of one algorithm at a fixed `n`, solving
/// through `engine`.
pub fn placement_strip(
    platform: &Platform,
    pattern: &WeightPattern,
    algorithm: Algorithm,
    n: usize,
    total_weight: f64,
    engine: &Engine,
) -> PlacementStrip {
    let solution = run_cell_on(platform, pattern, n, total_weight, algorithm, engine);
    PlacementStrip {
        platform: platform.name.clone(),
        pattern: pattern.name().to_string(),
        algorithm,
        n,
        schedule: solution.schedule.clone(),
    }
}

/// One platform row of Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// The platform of this row.
    pub platform: String,
    /// First column: normalized makespan of every algorithm.
    pub makespan: MakespanSeries,
    /// Remaining columns: the count panel of each algorithm, in the same
    /// order as `ExperimentConfig::algorithms`.
    pub counts: Vec<CountSeries>,
}

/// The full Figure 5 dataset (one row per platform, Uniform pattern).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5 {
    /// Rows in the paper's order: Hera, Atlas, Coastal, Coastal SSD.
    pub rows: Vec<Fig5Row>,
}

impl Fig5 {
    /// Renders every panel as an aligned-text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&row.makespan.to_table(&Algorithm::paper_algorithms()).to_aligned_text());
            out.push('\n');
            for counts in &row.counts {
                out.push_str(&counts.to_table().to_aligned_text());
                out.push('\n');
            }
        }
        out
    }

    /// All panels as CSV tables (in rendering order).
    pub fn to_tables(&self) -> Vec<Table> {
        let mut tables = Vec::new();
        for row in &self.rows {
            tables.push(row.makespan.to_table(&Algorithm::paper_algorithms()));
            for counts in &row.counts {
                tables.push(counts.to_table());
            }
        }
        tables
    }
}

/// Runs the Figure 5 evaluation (all four platforms, Uniform pattern),
/// sharing `engine` across every panel: the count panels repeat the makespan
/// panel's cells, so each distinct `(platform, n, algorithm)` DP runs
/// exactly once and the repeats show up as cache hits.
pub fn fig5(config: &ExperimentConfig, engine: &Engine) -> Fig5 {
    let pattern = WeightPattern::Uniform;
    let rows = scr::all()
        .into_iter()
        .map(|platform| Fig5Row {
            platform: platform.name.clone(),
            makespan: makespan_series(&platform, &pattern, config, engine),
            counts: config
                .algorithms
                .iter()
                .map(|&a| count_series(&platform, &pattern, a, config, engine))
                .collect(),
        })
        .collect();
    Fig5 { rows }
}

/// Runs the Figure 6 evaluation: `A_DMV` placement strips at `n` tasks
/// (the paper uses `n = 50`) on every platform with the Uniform pattern.
pub fn fig6(n: usize, total_weight: f64, engine: &Engine) -> Vec<PlacementStrip> {
    scr::all()
        .into_iter()
        .map(|platform| {
            placement_strip(
                &platform,
                &WeightPattern::Uniform,
                Algorithm::TwoLevelPartial,
                n,
                total_weight,
                engine,
            )
        })
        .collect()
}

/// The three panels of Figures 7 and 8 for one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternFigureRow {
    /// The platform of this row.
    pub platform: String,
    /// Normalized makespan of every algorithm vs. `n`.
    pub makespan: MakespanSeries,
    /// Count panel of `A_DMV` vs. `n`.
    pub admv_counts: CountSeries,
    /// Placement strip of `A_DMV` at the largest `n` of the sweep.
    pub strip: PlacementStrip,
}

/// Figure 7 (Decrease pattern) or Figure 8 (HighLow pattern) dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternFigure {
    /// Weight pattern used.
    pub pattern: String,
    /// One row per platform (the paper uses Hera and Coastal SSD).
    pub rows: Vec<PatternFigureRow>,
}

impl PatternFigure {
    /// Renders every panel (tables + strips) as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&row.makespan.to_table(&Algorithm::paper_algorithms()).to_aligned_text());
            out.push('\n');
            out.push_str(&row.admv_counts.to_table().to_aligned_text());
            out.push('\n');
            out.push_str(&row.strip.render());
            out.push('\n');
        }
        out
    }
}

fn pattern_figure(
    pattern: WeightPattern,
    config: &ExperimentConfig,
    engine: &Engine,
) -> PatternFigure {
    let platforms = [scr::hera(), scr::coastal_ssd()];
    let strip_n = config.max_tasks();
    let rows = platforms
        .into_iter()
        .map(|platform| PatternFigureRow {
            platform: platform.name.clone(),
            makespan: makespan_series(&platform, &pattern, config, engine),
            admv_counts: count_series(
                &platform,
                &pattern,
                Algorithm::TwoLevelPartial,
                config,
                engine,
            ),
            strip: placement_strip(
                &platform,
                &pattern,
                Algorithm::TwoLevelPartial,
                strip_n,
                config.total_weight,
                engine,
            ),
        })
        .collect();
    PatternFigure { pattern: pattern.name().to_string(), rows }
}

/// Runs the Figure 7 evaluation (Decrease pattern on Hera and Coastal SSD),
/// sharing `engine` across every panel (see [`fig5`]).
pub fn fig7(config: &ExperimentConfig, engine: &Engine) -> PatternFigure {
    pattern_figure(WeightPattern::Decrease, config, engine)
}

/// Runs the Figure 8 evaluation (HighLow pattern on Hera and Coastal SSD),
/// sharing `engine` across every panel (see [`fig5`]).
pub fn fig8(config: &ExperimentConfig, engine: &Engine) -> PatternFigure {
    pattern_figure(WeightPattern::high_low_default(), config, engine)
}

/// Configuration of a weak-scaling `n`-sweep: a **fixed per-task weight**
/// with a growing chain, so each scenario's task weights extend the previous
/// one's bitwise.
///
/// This is the prefix-stable counterpart of the paper's fixed-total-weight
/// sweeps: because the weight vectors nest, an ascending sweep solved through
/// an [`Engine`] extends one set of DP tables per algorithm instead of
/// re-solving every point — the whole series costs little more than its
/// largest point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeakScalingConfig {
    /// Weight of every task (seconds).  The paper's figures put 25 000 s on
    /// 50 tasks, i.e. 500 s/task.
    pub per_task_weight: f64,
    /// Chain lengths to evaluate, in ascending order for maximal reuse.
    pub task_counts: Vec<usize>,
    /// Algorithms to compare.
    pub algorithms: Vec<Algorithm>,
}

impl WeakScalingConfig {
    /// The paper-matched default: 500 s/task up to `max_tasks`, every point
    /// a multiple of 5, all three paper algorithms.
    pub fn paper(max_tasks: usize) -> Self {
        Self {
            per_task_weight: PAPER_TOTAL_WEIGHT / PAPER_MAX_TASKS as f64,
            task_counts: (1..=max_tasks / 5).map(|i| i * 5).collect(),
            algorithms: Algorithm::paper_algorithms().to_vec(),
        }
    }
}

/// Builds the weak-scaling scenario with `n` tasks of `per_task_weight`
/// seconds each.
///
/// The chain is constructed from the per-task weight directly (not via
/// `total / n`, whose rounding would break bitwise prefix stability).
pub fn weak_scaling_scenario(platform: &Platform, n: usize, per_task_weight: f64) -> Scenario {
    let chain = chain2l_model::TaskChain::from_weights(vec![per_task_weight; n])
        .expect("positive per-task weight");
    let costs = chain2l_model::ResilienceCosts::paper_defaults(platform);
    Scenario::new(chain, platform.clone(), costs).expect("valid paper costs")
}

/// Builds the weak-scaling makespan series, solving through `engine`.
///
/// Points are solved **sequentially in the given order** (not batched): with
/// ascending task counts the engine routes each point onto the previous
/// point's finished DP tables (the incremental-extension strategy), so the
/// sweep is served by one cold solve per algorithm plus cheap extensions —
/// makespans and schedules stay bit-identical to per-point cold solves (see
/// the kernel-equivalence tests).
pub fn weak_scaling_series(
    platform: &Platform,
    config: &WeakScalingConfig,
    engine: &Engine,
) -> MakespanSeries {
    let points = config
        .task_counts
        .iter()
        .map(|&n| {
            let scenario = weak_scaling_scenario(platform, n, config.per_task_weight);
            let values = config
                .algorithms
                .iter()
                .map(|&a| (a, engine.solve(&scenario, a).normalized_makespan))
                .collect();
            MakespanPoint { n, values }
        })
        .collect();
    MakespanSeries {
        platform: platform.name.clone(),
        pattern: format!("weak-scaling ({} s/task)", config.per_task_weight),
        points,
    }
}

/// Renders Table I (platform parameters, plus the derived MTBFs in days that
/// the paper quotes in its prose).
pub fn table1() -> Table {
    let mut table = Table::new(
        "Table I — platform parameters",
        &[
            "platform",
            "#nodes",
            "lambda_f",
            "lambda_s",
            "C_D (s)",
            "C_M (s)",
            "MTBF_f (days)",
            "MTBF_s (days)",
        ],
    );
    for p in scr::all() {
        table.push_row(vec![
            p.name.clone(),
            p.nodes.to_string(),
            format!("{:.2e}", p.lambda_fail_stop),
            format!("{:.2e}", p.lambda_silent),
            fmt_f64(p.disk_checkpoint_cost, 1),
            fmt_f64(p.memory_checkpoint_cost, 1),
            fmt_f64(p.fail_stop_mtbf_days(), 1),
            fmt_f64(p.silent_mtbf_days(), 1),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            total_weight: PAPER_TOTAL_WEIGHT,
            task_counts: vec![2, 6, 10],
            algorithms: Algorithm::paper_algorithms().to_vec(),
        }
    }

    #[test]
    fn config_presets_have_expected_shapes() {
        assert_eq!(ExperimentConfig::paper().task_counts.len(), 50);
        assert_eq!(ExperimentConfig::paper().max_tasks(), 50);
        assert!(ExperimentConfig::quick().max_tasks() <= 30);
        assert_eq!(ExperimentConfig::coarse().task_counts.first(), Some(&5));
        assert_eq!(ExperimentConfig::coarse().max_tasks(), 50);
    }

    #[test]
    fn makespan_series_has_all_points_and_algorithms() {
        let config = tiny_config();
        let series =
            makespan_series(&scr::hera(), &WeightPattern::Uniform, &config, &Engine::new());
        assert_eq!(series.points.len(), 3);
        for p in &series.points {
            assert_eq!(p.values.len(), 3);
            for (_, v) in &p.values {
                assert!(*v >= 1.0, "normalized makespan {v} below 1");
                assert!(*v < 1.5, "normalized makespan {v} implausibly high");
            }
        }
    }

    #[test]
    fn two_level_dominates_single_level_in_every_cell() {
        let config = tiny_config();
        for platform in scr::all() {
            let series =
                makespan_series(&platform, &WeightPattern::Uniform, &config, &Engine::new());
            for p in &series.points {
                let single = p.value(Algorithm::SingleLevel).unwrap();
                let two = p.value(Algorithm::TwoLevel).unwrap();
                assert!(two <= single + 1e-9, "{} n={}: {two} > {single}", platform.name, p.n);
            }
        }
    }

    #[test]
    fn count_series_matches_schedule_counts() {
        let config = tiny_config();
        let series = count_series(
            &scr::hera(),
            &WeightPattern::Uniform,
            Algorithm::TwoLevel,
            &config,
            &Engine::new(),
        );
        assert_eq!(series.points.len(), 3);
        for p in &series.points {
            // Hierarchical counts: verifications ≥ memory ≥ disk ≥ 1 (terminal).
            assert!(p.counts.guaranteed_verifications >= p.counts.memory_checkpoints);
            assert!(p.counts.memory_checkpoints >= p.counts.disk_checkpoints);
            assert!(p.counts.disk_checkpoints >= 1);
            // A_DMV* never places partial verifications.
            assert_eq!(p.counts.partial_verifications, 0);
        }
    }

    #[test]
    fn placement_strip_uses_requested_size() {
        let strip = placement_strip(
            &scr::hera(),
            &WeightPattern::Uniform,
            Algorithm::TwoLevel,
            12,
            PAPER_TOTAL_WEIGHT,
            &Engine::new(),
        );
        assert_eq!(strip.n, 12);
        assert_eq!(strip.schedule.len(), 12);
        assert!(strip.render().contains("Platform Hera"));
    }

    #[test]
    fn fig6_produces_one_strip_per_platform() {
        let strips = fig6(10, PAPER_TOTAL_WEIGHT, &Engine::new());
        assert_eq!(strips.len(), 4);
        let names: Vec<&str> = strips.iter().map(|s| s.platform.as_str()).collect();
        assert_eq!(names, vec!["Hera", "Atlas", "Coastal", "Coastal SSD"]);
    }

    #[test]
    fn table1_matches_published_parameters() {
        let t = table1();
        assert_eq!(t.row_count(), 4);
        let csv = t.to_csv();
        assert!(csv.contains("Hera,256,9.46e-7,3.38e-6,300.0,15.4"));
        assert!(csv.contains("Coastal SSD,1024,4.02e-7,2.01e-6,2500.0,180.0"));
        // MTBFs quoted in the paper's prose: 12.2 and 3.4 days for Hera.
        assert!(csv.contains("12.2"));
        assert!(csv.contains("3.4"));
    }

    #[test]
    fn fig5_with_shared_engine_solves_each_distinct_cell_exactly_once() {
        let config = tiny_config();
        let engine = Engine::new();
        let data = fig5(&config, &engine);
        let distinct = 4 * config.task_counts.len() * config.algorithms.len();
        let stats = engine.stats();
        assert_eq!(
            stats.cache.misses as usize, distinct,
            "every distinct cell solved exactly once"
        );
        assert_eq!(stats.cache.entries, distinct);
        // The count panels revisit every makespan cell: all served from cache.
        assert_eq!(stats.cache.hits as usize, distinct);
        // And the shared-engine figure is identical to a fresh-engine one.
        assert_eq!(data, fig5(&config, &Engine::new()));
    }

    #[test]
    fn weak_scaling_series_reuses_incremental_tables_and_matches_cold_solves() {
        let config = WeakScalingConfig {
            per_task_weight: 500.0,
            task_counts: vec![5, 10, 15, 20],
            algorithms: vec![Algorithm::TwoLevel, Algorithm::TwoLevelPartial],
        };
        let engine = Engine::new();
        let series = weak_scaling_series(&scr::hera(), &config, &engine);
        assert_eq!(series.points.len(), 4);
        // One cold solve per algorithm, every later point an extension.
        let stats = engine.stats();
        assert_eq!(stats.cold(), 2);
        assert_eq!(stats.extended, 6);
        assert_eq!(stats.reused, 0);
        // Bit-identical to per-point cold solves.
        for p in &series.points {
            for &(a, v) in &p.values {
                let cold =
                    chain2l_core::optimize(&weak_scaling_scenario(&scr::hera(), p.n, 500.0), a);
                assert_eq!(v.to_bits(), cold.normalized_makespan.to_bits(), "{a} n={}", p.n);
            }
        }
        // The pattern label and paper preset are well-formed.
        assert!(series.pattern.contains("weak-scaling"));
        let preset = WeakScalingConfig::paper(50);
        assert_eq!(preset.task_counts.last(), Some(&50));
        assert_eq!(preset.per_task_weight, 500.0);
    }

    #[test]
    fn fig7_and_fig8_cover_hera_and_coastal_ssd() {
        let config = ExperimentConfig {
            total_weight: PAPER_TOTAL_WEIGHT,
            task_counts: vec![5, 10],
            algorithms: Algorithm::paper_algorithms().to_vec(),
        };
        for figure in [fig7(&config, &Engine::new()), fig8(&config, &Engine::new())] {
            assert_eq!(figure.rows.len(), 2);
            assert_eq!(figure.rows[0].platform, "Hera");
            assert_eq!(figure.rows[1].platform, "Coastal SSD");
            assert_eq!(figure.rows[0].strip.n, 10);
            assert!(!figure.render().is_empty());
        }
        assert_eq!(fig7(&config, &Engine::new()).pattern, "decrease");
        assert_eq!(fig8(&config, &Engine::new()).pattern, "highlow");
    }
}
