//! Data structures for the paper's figures.
//!
//! Every panel of Figures 5–8 reduces to one of three shapes:
//!
//! * a **makespan panel** — normalized expected makespan vs. number of tasks,
//!   one curve per algorithm ([`MakespanSeries`]);
//! * a **count panel** — number of disk checkpoints, memory checkpoints,
//!   guaranteed verifications and partial verifications vs. number of tasks,
//!   for one algorithm ([`CountSeries`]);
//! * a **placement strip** — the positions of the actions along the chain for
//!   one configuration ([`PlacementStrip`], Figure 6 and the last columns of
//!   Figures 7–8).
//!
//! The structures are algorithm-agnostic containers; [`crate::experiments`]
//! fills them and [`crate::report`] renders them.

use crate::report::{fmt_f64, Table};
use chain2l_core::Algorithm;
use chain2l_model::{ActionCounts, Schedule};
use serde::{Deserialize, Serialize};

/// One point of a makespan panel: the normalized makespan of each algorithm
/// for a given number of tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MakespanPoint {
    /// Number of tasks.
    pub n: usize,
    /// `(algorithm, normalized makespan)` pairs, in the order they were run.
    pub values: Vec<(Algorithm, f64)>,
}

impl MakespanPoint {
    /// Normalized makespan of `algorithm` at this point, if present.
    pub fn value(&self, algorithm: Algorithm) -> Option<f64> {
        self.values.iter().find(|(a, _)| *a == algorithm).map(|(_, v)| *v)
    }
}

/// A makespan panel (one per platform/pattern combination).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MakespanSeries {
    /// Platform name.
    pub platform: String,
    /// Weight pattern name.
    pub pattern: String,
    /// Points, ordered by increasing `n`.
    pub points: Vec<MakespanPoint>,
}

impl MakespanSeries {
    /// Renders the panel as a table (one row per `n`, one column per algorithm).
    pub fn to_table(&self, algorithms: &[Algorithm]) -> Table {
        let mut columns = vec!["n".to_string()];
        columns.extend(algorithms.iter().map(|a| a.label().to_string()));
        let column_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(
            format!("Normalized makespan — {} / {}", self.platform, self.pattern),
            &column_refs,
        );
        for point in &self.points {
            let mut row = vec![point.n.to_string()];
            for a in algorithms {
                row.push(point.value(*a).map(|v| fmt_f64(v, 5)).unwrap_or_else(|| "-".into()));
            }
            table.push_row(row);
        }
        table
    }

    /// The largest relative improvement of `better` over `worse` across all
    /// points: `max_n (worse − better) / worse`.
    pub fn max_gain(&self, better: Algorithm, worse: Algorithm) -> Option<f64> {
        self.points
            .iter()
            .filter_map(|p| match (p.value(better), p.value(worse)) {
                (Some(b), Some(w)) if w > 0.0 => Some((w - b) / w),
                _ => None,
            })
            .fold(None, |acc: Option<f64>, g| Some(acc.map_or(g, |a| a.max(g))))
    }
}

/// One point of a count panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountPoint {
    /// Number of tasks.
    pub n: usize,
    /// Hierarchical action counts of the optimal schedule.
    pub counts: ActionCounts,
}

/// A count panel: action counts vs. number of tasks for one algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountSeries {
    /// Platform name.
    pub platform: String,
    /// Weight pattern name.
    pub pattern: String,
    /// Algorithm whose placements are counted.
    pub algorithm: Algorithm,
    /// Points, ordered by increasing `n`.
    pub points: Vec<CountPoint>,
}

impl CountSeries {
    /// Renders the panel as a table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            format!(
                "Checkpoint / verification counts — {} on {} / {}",
                self.algorithm.label(),
                self.platform,
                self.pattern
            ),
            &["n", "disk_ckpts", "memory_ckpts", "guaranteed_verifs", "partial_verifs"],
        );
        for p in &self.points {
            table.push_row(vec![
                p.n.to_string(),
                p.counts.disk_checkpoints.to_string(),
                p.counts.memory_checkpoints.to_string(),
                p.counts.guaranteed_verifications.to_string(),
                p.counts.partial_verifications.to_string(),
            ]);
        }
        table
    }

    /// Counts at the largest `n` of the series.
    pub fn final_counts(&self) -> Option<ActionCounts> {
        self.points.last().map(|p| p.counts)
    }
}

/// A placement strip: the Figure-6 style visualisation of one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementStrip {
    /// Platform name.
    pub platform: String,
    /// Weight pattern name.
    pub pattern: String,
    /// Algorithm that produced the placement.
    pub algorithm: Algorithm,
    /// Number of tasks.
    pub n: usize,
    /// The schedule itself.
    pub schedule: Schedule,
}

impl PlacementStrip {
    /// Renders the strip as ASCII rows (`x` marks a boundary carrying the action).
    pub fn render(&self) -> String {
        self.schedule.render_strips(&format!(
            "Platform {} with {} and n={} ({} pattern)",
            self.platform,
            self.algorithm.label(),
            self.n,
            self.pattern
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain2l_model::Action;

    fn sample_series() -> MakespanSeries {
        MakespanSeries {
            platform: "Hera".into(),
            pattern: "uniform".into(),
            points: vec![
                MakespanPoint {
                    n: 10,
                    values: vec![
                        (Algorithm::SingleLevel, 1.06),
                        (Algorithm::TwoLevel, 1.04),
                        (Algorithm::TwoLevelPartial, 1.04),
                    ],
                },
                MakespanPoint {
                    n: 50,
                    values: vec![
                        (Algorithm::SingleLevel, 1.05),
                        (Algorithm::TwoLevel, 1.03),
                        (Algorithm::TwoLevelPartial, 1.029),
                    ],
                },
            ],
        }
    }

    #[test]
    fn makespan_point_lookup() {
        let s = sample_series();
        assert_eq!(s.points[0].value(Algorithm::TwoLevel), Some(1.04));
        assert_eq!(s.points[0].value(Algorithm::TwoLevelPartialRefined), None);
    }

    #[test]
    fn makespan_table_has_one_row_per_n() {
        let s = sample_series();
        let t = s.to_table(&Algorithm::paper_algorithms());
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.columns().len(), 4);
        let csv = t.to_csv();
        assert!(csv.contains("ADV*"));
        assert!(csv.contains("1.03000"));
    }

    #[test]
    fn max_gain_finds_the_largest_improvement() {
        let s = sample_series();
        let gain = s.max_gain(Algorithm::TwoLevel, Algorithm::SingleLevel).unwrap();
        // Gains are (1.06-1.04)/1.06 ≈ 0.0189 and (1.05-1.03)/1.05 ≈ 0.0190.
        assert!((gain - 0.019).abs() < 1e-3);
        assert!(s.max_gain(Algorithm::TwoLevelPartialRefined, Algorithm::SingleLevel).is_none());
    }

    #[test]
    fn count_series_table_and_final_counts() {
        let series = CountSeries {
            platform: "Atlas".into(),
            pattern: "uniform".into(),
            algorithm: Algorithm::TwoLevelPartial,
            points: vec![
                CountPoint {
                    n: 10,
                    counts: ActionCounts {
                        disk_checkpoints: 1,
                        memory_checkpoints: 3,
                        guaranteed_verifications: 5,
                        partial_verifications: 0,
                    },
                },
                CountPoint {
                    n: 50,
                    counts: ActionCounts {
                        disk_checkpoints: 1,
                        memory_checkpoints: 8,
                        guaranteed_verifications: 20,
                        partial_verifications: 6,
                    },
                },
            ],
        };
        let t = series.to_table();
        assert_eq!(t.row_count(), 2);
        assert!(t.to_csv().contains("50,1,8,20,6"));
        assert_eq!(series.final_counts().unwrap().partial_verifications, 6);
    }

    #[test]
    fn placement_strip_renders_schedule_rows() {
        let mut schedule = Schedule::terminal_only(10);
        schedule.set_action(5, Action::MemoryCheckpoint);
        let strip = PlacementStrip {
            platform: "Hera".into(),
            pattern: "uniform".into(),
            algorithm: Algorithm::TwoLevelPartial,
            n: 10,
            schedule,
        };
        let text = strip.render();
        assert!(text.contains("Platform Hera"));
        assert!(text.contains("ADMV"));
        assert_eq!(text.lines().count(), 5);
    }
}
