//! Cached vs. uncached solves are bit-identical, and the sweep grid stays
//! byte-identical with the cache enabled and across thread counts.

use chain2l_analysis::sweep::{grid_table, run_grid, run_grid_with_cache, GridSpec};
use chain2l_core::cache::SolutionCache;
use chain2l_core::{optimize, Algorithm};
use chain2l_model::platform::scr;
use chain2l_model::{Scenario, WeightPattern};

const W: f64 = 25_000.0;

#[test]
fn cached_solves_are_bit_identical_for_all_platforms_and_algorithms() {
    let cache = SolutionCache::new();
    let algorithms = [
        Algorithm::SingleLevel,
        Algorithm::TwoLevel,
        Algorithm::TwoLevelPartial,
        Algorithm::TwoLevelPartialRefined,
    ];
    for platform in scr::all() {
        for algorithm in algorithms {
            let s = Scenario::paper_setup(&platform, &WeightPattern::Uniform, 10, W).unwrap();
            let direct = optimize(&s, algorithm);
            let cached = cache.solve(&s, algorithm);
            assert_eq!(
                direct.expected_makespan.to_bits(),
                cached.expected_makespan.to_bits(),
                "{} / {algorithm}: cached makespan differs",
                platform.name
            );
            assert_eq!(direct.schedule, cached.schedule, "{} / {algorithm}", platform.name);
            assert_eq!(direct.stats, cached.stats, "{} / {algorithm}", platform.name);
            assert_eq!(direct.normalized_makespan.to_bits(), cached.normalized_makespan.to_bits());
            // A repeated solve is served from cache and stays identical.
            let again = cache.solve(&s, algorithm);
            assert_eq!(cached.expected_makespan.to_bits(), again.expected_makespan.to_bits());
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 16, "4 platforms x 4 algorithms, each solved once");
    assert_eq!(stats.hits, 16, "every repeat served from cache");
}

#[test]
fn validated_grid_is_byte_identical_with_cache_and_across_thread_counts() {
    let spec = GridSpec { validation_replications: 40, ..GridSpec::paper(vec![3, 6], 42) };
    let baseline = grid_table(&run_grid(&spec)).to_csv();

    // Cache enabled: first run fills the cache, second run is all hits —
    // both byte-identical to the uncached baseline.
    let cache = SolutionCache::new();
    let first = grid_table(&run_grid_with_cache(&spec, &cache)).to_csv();
    let second = grid_table(&run_grid_with_cache(&spec, &cache)).to_csv();
    assert_eq!(baseline, first, "cache on vs. off must not change the grid");
    assert_eq!(baseline, second, "warm cache must not change the grid");
    let stats = cache.stats();
    assert_eq!(stats.misses as usize, spec.cell_count(), "distinct cells solved exactly once");
    assert_eq!(stats.hits as usize, spec.cell_count(), "second run fully served from cache");

    // Thread counts: the d1-sharded DPs and the work-stealing grid must not
    // perturb a single byte.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let single_threaded = grid_table(&run_grid(&spec)).to_csv();
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let four_threads = grid_table(&run_grid_with_cache(&spec, &SolutionCache::new())).to_csv();
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(baseline, single_threaded, "RAYON_NUM_THREADS=1 changed the grid");
    assert_eq!(baseline, four_threads, "RAYON_NUM_THREADS=4 changed the grid");
}
