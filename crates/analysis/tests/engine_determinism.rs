//! Engine-routed solves are bit-identical to direct kernel calls, and the
//! sweep grid stays byte-identical however the engine serves its cells —
//! shared or fresh, warm or cold, at any thread count.

use chain2l_analysis::sweep::{grid_table, run_grid, GridSpec};
use chain2l_core::{optimize, Algorithm, Engine};
use chain2l_model::platform::scr;
use chain2l_model::{Scenario, WeightPattern};

const W: f64 = 25_000.0;

#[test]
fn engine_solves_are_bit_identical_for_all_platforms_and_algorithms() {
    let engine = Engine::new();
    let algorithms = [
        Algorithm::SingleLevel,
        Algorithm::TwoLevel,
        Algorithm::TwoLevelPartial,
        Algorithm::TwoLevelPartialRefined,
    ];
    for platform in scr::all() {
        for algorithm in algorithms {
            let s = Scenario::paper_setup(&platform, &WeightPattern::Uniform, 10, W).unwrap();
            let direct = optimize(&s, algorithm);
            let routed = engine.solve(&s, algorithm);
            assert_eq!(
                direct.expected_makespan.to_bits(),
                routed.expected_makespan.to_bits(),
                "{} / {algorithm}: engine makespan differs",
                platform.name
            );
            assert_eq!(direct.schedule, routed.schedule, "{} / {algorithm}", platform.name);
            assert_eq!(direct.stats, routed.stats, "{} / {algorithm}", platform.name);
            assert_eq!(direct.normalized_makespan.to_bits(), routed.normalized_makespan.to_bits());
            // A repeated solve is served from cache and stays identical.
            let again = engine.solve(&s, algorithm);
            assert_eq!(routed.expected_makespan.to_bits(), again.expected_makespan.to_bits());
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.cache.misses, 16, "4 platforms x 4 algorithms, each solved once");
    assert_eq!(stats.cache.hits, 16, "every repeat served from cache");
    assert_eq!(stats.routed(), 16, "every miss routed through exactly one strategy");
}

#[test]
fn validated_grid_is_byte_identical_with_shared_engine_and_across_thread_counts() {
    let spec = GridSpec { validation_replications: 40, ..GridSpec::paper(vec![3, 6], 42) };
    let baseline = grid_table(&run_grid(&spec, &Engine::new())).to_csv();

    // Shared engine: first run fills the cache, second run is all hits —
    // both byte-identical to the fresh-engine baseline.
    let engine = Engine::new();
    let first = grid_table(&run_grid(&spec, &engine)).to_csv();
    let second = grid_table(&run_grid(&spec, &engine)).to_csv();
    assert_eq!(baseline, first, "shared engine must not change the grid");
    assert_eq!(baseline, second, "warm engine must not change the grid");
    let stats = engine.stats();
    assert_eq!(
        stats.cache.misses as usize,
        spec.cell_count(),
        "distinct cells solved exactly once"
    );
    assert_eq!(stats.cache.hits as usize, spec.cell_count(), "second run fully served from cache");

    // Thread counts: the d1-sharded DPs and the work-stealing grid must not
    // perturb a single byte.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let single_threaded = grid_table(&run_grid(&spec, &Engine::new())).to_csv();
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let four_threads = grid_table(&run_grid(&spec, &Engine::new())).to_csv();
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(baseline, single_threaded, "RAYON_NUM_THREADS=1 changed the grid");
    assert_eq!(baseline, four_threads, "RAYON_NUM_THREADS=4 changed the grid");
}
