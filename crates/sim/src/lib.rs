//! # chain2l-sim
//!
//! Monte-Carlo discrete-event simulator for the execution model of
//! *"Two-Level Checkpointing and Verifications for Linear Task Graphs"*
//! (Benoit, Cavelan, Robert, Sun — IPDPSW/PDSEC 2016).
//!
//! The simulator executes a [`chain2l_model::Schedule`] on a
//! [`chain2l_model::Scenario`] while injecting fail-stop and silent errors
//! according to the platform's Poisson rates, faithfully applying the
//! two-level rollback semantics (disk recovery for fail-stop errors, memory
//! recovery for detected silent errors, imperfect recall for partial
//! verifications).  It is the *independent* check of the analytical
//! expectations computed by `chain2l-core`: on guaranteed-verification
//! schedules the two agree exactly in expectation; on partial-verification
//! schedules the agreement quantifies the accuracy of the paper's §III-B
//! accounting (see EXPERIMENTS.md).
//!
//! * [`engine`] — one simulated run, optionally with a full event [`trace`];
//! * [`runner`] — Monte-Carlo campaigns with multi-threaded replication;
//! * [`convergence`] — adaptive campaigns that stop once the confidence
//!   interval is tight enough;
//! * [`distribution`] — makespan histograms and percentiles;
//! * [`faults`] — Poisson fault injection;
//! * [`stats`] — Welford accumulators and confidence intervals.
//!
//! # Example
//!
//! ```
//! use chain2l_model::platform::scr;
//! use chain2l_model::pattern::WeightPattern;
//! use chain2l_model::Scenario;
//! use chain2l_core::{optimize, Algorithm};
//! use chain2l_sim::runner::{run_monte_carlo, MonteCarloConfig};
//!
//! let scenario =
//!     Scenario::paper_setup(&scr::hera(), &WeightPattern::Uniform, 10, 25_000.0).unwrap();
//! let solution = optimize(&scenario, Algorithm::TwoLevel);
//! let report = run_monte_carlo(
//!     &scenario,
//!     &solution.schedule,
//!     MonteCarloConfig { replications: 2_000, seed: 42, threads: 2 },
//! )
//! .unwrap();
//! // The empirical mean sits within a few percent of the analytical optimum.
//! assert!(report.relative_error_vs(solution.expected_makespan).abs() < 0.05);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod convergence;
pub mod distribution;
pub mod engine;
pub mod faults;
pub mod runner;
pub mod stats;
pub mod trace;

pub use convergence::{run_until_converged, ConvergenceConfig, ConvergenceReport};
pub use distribution::{DistributionCollector, MakespanDistribution};
pub use engine::{simulate_run, RunConfig, RunResult};
pub use faults::FaultInjector;
pub use runner::{run_monte_carlo, MonteCarloConfig, MonteCarloReport};
pub use stats::{Summary, Welford};
pub use trace::{SimEvent, Trace, TraceEntry};
