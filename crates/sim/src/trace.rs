//! Execution traces: what happened during one simulated run.
//!
//! The simulation engine can optionally record every event with its timestamp.
//! Traces are used by tests (to check the execution semantics) and by the CLI
//! (`chain2l simulate --trace`) to explain where time went.

use serde::{Deserialize, Serialize};

/// One event of a simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// Task `index` finished its computation (this attempt).
    TaskCompleted {
        /// 1-based task index.
        index: usize,
    },
    /// A fail-stop error interrupted task `index` after `elapsed` seconds of
    /// (re-)execution of that task.
    FailStop {
        /// 1-based task index being executed when the error struck.
        index: usize,
        /// Seconds of the current task attempt that were lost.
        elapsed: f64,
    },
    /// A silent error corrupted the data while executing task `index`.
    SilentError {
        /// 1-based task index being executed when the corruption occurred.
        index: usize,
    },
    /// A partial verification at boundary `boundary` ran; `detected` tells
    /// whether it caught an existing corruption (always `false` when the data
    /// was clean).
    PartialVerification {
        /// Boundary (1-based task index) where the verification ran.
        boundary: usize,
        /// Whether a corruption was present and detected.
        detected: bool,
        /// Whether a corruption was present at all.
        corrupted: bool,
    },
    /// A guaranteed verification at `boundary`; `detected` is true iff the
    /// data was corrupted (guaranteed verifications never miss).
    GuaranteedVerification {
        /// Boundary where the verification ran.
        boundary: usize,
        /// Whether a corruption was present (and therefore detected).
        detected: bool,
    },
    /// A memory checkpoint was taken at `boundary`.
    MemoryCheckpoint {
        /// Boundary where the checkpoint was taken.
        boundary: usize,
    },
    /// A disk checkpoint was taken at `boundary`.
    DiskCheckpoint {
        /// Boundary where the checkpoint was taken.
        boundary: usize,
    },
    /// Rollback to the memory checkpoint at `to_boundary` (silent error detected).
    MemoryRollback {
        /// Boundary of the memory checkpoint restored.
        to_boundary: usize,
    },
    /// Rollback to the disk checkpoint at `to_boundary` (fail-stop error).
    DiskRollback {
        /// Boundary of the disk checkpoint restored.
        to_boundary: usize,
    },
    /// The application completed with verified-correct output.
    Completed,
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Simulation clock (seconds) when the event was recorded.
    pub time: f64,
    /// The event.
    pub event: SimEvent,
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at simulation time `time`.
    pub fn record(&mut self, time: f64, event: SimEvent) {
        self.entries.push(TraceEntry { time, event });
    }

    /// All entries in chronological order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of fail-stop errors experienced.
    pub fn fail_stop_count(&self) -> usize {
        self.count(|e| matches!(e, SimEvent::FailStop { .. }))
    }

    /// Number of silent errors injected.
    pub fn silent_error_count(&self) -> usize {
        self.count(|e| matches!(e, SimEvent::SilentError { .. }))
    }

    /// Number of rollbacks to a memory checkpoint.
    pub fn memory_rollback_count(&self) -> usize {
        self.count(|e| matches!(e, SimEvent::MemoryRollback { .. }))
    }

    /// Number of rollbacks to a disk checkpoint.
    pub fn disk_rollback_count(&self) -> usize {
        self.count(|e| matches!(e, SimEvent::DiskRollback { .. }))
    }

    /// Number of partial verifications that missed an existing corruption.
    pub fn partial_misses(&self) -> usize {
        self.count(|e| {
            matches!(e, SimEvent::PartialVerification { corrupted: true, detected: false, .. })
        })
    }

    /// Number of task completions (including re-executions).
    pub fn task_completions(&self) -> usize {
        self.count(|e| matches!(e, SimEvent::TaskCompleted { .. }))
    }

    /// Whether the run completed.
    pub fn completed(&self) -> bool {
        self.count(|e| matches!(e, SimEvent::Completed)) > 0
    }

    fn count(&self, pred: impl Fn(&SimEvent) -> bool) -> usize {
        self.entries.iter().filter(|t| pred(&t.event)).count()
    }

    /// Checks chronological and structural consistency:
    /// timestamps are non-decreasing, and at most one `Completed` event exists
    /// (as the final entry).
    pub fn is_well_formed(&self) -> bool {
        let mut prev = 0.0f64;
        for (i, entry) in self.entries.iter().enumerate() {
            if entry.time + 1e-9 < prev {
                return false;
            }
            prev = entry.time;
            if matches!(entry.event, SimEvent::Completed) && i + 1 != self.entries.len() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_reflect_recorded_events() {
        let mut t = Trace::new();
        t.record(0.0, SimEvent::SilentError { index: 1 });
        t.record(1.0, SimEvent::TaskCompleted { index: 1 });
        t.record(
            2.0,
            SimEvent::PartialVerification { boundary: 1, detected: false, corrupted: true },
        );
        t.record(3.0, SimEvent::TaskCompleted { index: 2 });
        t.record(4.0, SimEvent::GuaranteedVerification { boundary: 2, detected: true });
        t.record(4.5, SimEvent::MemoryRollback { to_boundary: 0 });
        t.record(9.0, SimEvent::FailStop { index: 1, elapsed: 0.5 });
        t.record(9.5, SimEvent::DiskRollback { to_boundary: 0 });
        t.record(20.0, SimEvent::Completed);

        assert_eq!(t.len(), 9);
        assert_eq!(t.fail_stop_count(), 1);
        assert_eq!(t.silent_error_count(), 1);
        assert_eq!(t.memory_rollback_count(), 1);
        assert_eq!(t.disk_rollback_count(), 1);
        assert_eq!(t.partial_misses(), 1);
        assert_eq!(t.task_completions(), 2);
        assert!(t.completed());
        assert!(t.is_well_formed());
    }

    #[test]
    fn empty_trace_is_well_formed() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert!(t.is_well_formed());
        assert!(!t.completed());
    }

    #[test]
    fn out_of_order_timestamps_are_rejected() {
        let mut t = Trace::new();
        t.record(5.0, SimEvent::TaskCompleted { index: 1 });
        t.record(4.0, SimEvent::TaskCompleted { index: 2 });
        assert!(!t.is_well_formed());
    }

    #[test]
    fn completed_must_be_last() {
        let mut t = Trace::new();
        t.record(1.0, SimEvent::Completed);
        t.record(2.0, SimEvent::TaskCompleted { index: 1 });
        assert!(!t.is_well_formed());
    }
}
