//! The simulation engine: executes one run of a schedule under injected errors.
//!
//! The engine walks the chain task by task and applies exactly the execution
//! model of §II of the paper:
//!
//! * computation is interrupted by **fail-stop errors** (Poisson, rate `λ_f`):
//!   the time spent since the last committed boundary is lost, a disk recovery
//!   `R_D` is paid (zero when rolling back to the virtual task `T0`), the last
//!   in-memory checkpoint is lost, and execution resumes after the last disk
//!   checkpoint;
//! * **silent errors** (Poisson, rate `λ_s`) corrupt the data without any
//!   immediate symptom; they are caught by the next verification —
//!   a *partial* verification detects an existing corruption with probability
//!   `r`, a *guaranteed* one always does — after which a memory recovery
//!   `R_M` is paid and execution resumes after the last memory checkpoint;
//! * checkpoints, verifications and recoveries are failure-free (as assumed by
//!   the paper), and corrupted data is never checkpointed because every
//!   memory checkpoint is preceded by a guaranteed verification.

use crate::faults::FaultInjector;
use crate::trace::{SimEvent, Trace};
use chain2l_model::{ModelError, Scenario, Schedule};
use serde::{Deserialize, Serialize};

/// Outcome of one simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Total wall-clock time of the run (seconds).
    pub makespan: f64,
    /// Number of fail-stop errors experienced.
    pub fail_stop_errors: usize,
    /// Number of silent errors injected.
    pub silent_errors: usize,
    /// Number of rollbacks to a memory checkpoint.
    pub memory_rollbacks: usize,
    /// Number of rollbacks to a disk checkpoint.
    pub disk_rollbacks: usize,
    /// Number of partial verifications that missed an existing corruption.
    pub partial_misses: usize,
    /// Seconds of computation that had to be re-executed (work executed more
    /// than once) plus work lost to interrupted attempts.
    pub wasted_work: f64,
    /// Seconds spent in checkpoints, verifications and recoveries.
    pub resilience_overhead: f64,
}

/// Configuration of a single simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunConfig {
    /// RNG seed for fault injection.
    pub seed: u64,
    /// Whether to record a full [`Trace`].
    pub record_trace: bool,
    /// Safety valve: abort the run (panic) after this many task attempts, so a
    /// mis-configured scenario cannot loop forever.  The default
    /// (1 000 000) is far beyond anything the paper's parameters produce.
    pub max_task_attempts: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self { seed: 0, record_trace: false, max_task_attempts: 1_000_000 }
    }
}

impl RunConfig {
    /// Convenience constructor with just a seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }
}

/// Simulates one execution of `schedule` on `scenario`.
///
/// Returns the run outcome and, when requested, the full event trace.
///
/// # Errors
/// Returns [`ModelError::InvalidSchedule`] when the schedule is not valid for
/// the scenario's chain.
pub fn simulate_run(
    scenario: &Scenario,
    schedule: &Schedule,
    config: RunConfig,
) -> Result<(RunResult, Trace), ModelError> {
    schedule.validate(&scenario.chain)?;
    let mut injector = FaultInjector::new(
        scenario.platform.lambda_fail_stop,
        scenario.platform.lambda_silent,
        config.seed,
    );
    Ok(simulate_with_injector(scenario, schedule, &mut injector, config))
}

/// Simulates one execution using a caller-provided injector (the Monte-Carlo
/// runner reuses one injector across replications on each worker thread).
pub fn simulate_with_injector(
    scenario: &Scenario,
    schedule: &Schedule,
    injector: &mut FaultInjector,
    config: RunConfig,
) -> (RunResult, Trace) {
    let n = scenario.task_count();
    let costs = &scenario.costs;
    let mut trace = Trace::new();
    let record = |trace: &mut Trace, time: f64, event: SimEvent| {
        if config.record_trace {
            trace.record(time, event);
        }
    };

    let mut clock = 0.0f64;
    let mut result = RunResult {
        makespan: 0.0,
        fail_stop_errors: 0,
        silent_errors: 0,
        memory_rollbacks: 0,
        disk_rollbacks: 0,
        partial_misses: 0,
        wasted_work: 0.0,
        resilience_overhead: 0.0,
    };

    // Boundary of the last committed (successfully executed) task.
    let mut position = 0usize;
    // Boundaries of the last disk / memory checkpoints still available.
    let mut last_disk = 0usize;
    let mut last_mem = 0usize;
    // Whether an undetected silent error is present in the current data.
    let mut corrupted = false;
    // Work already committed once (to account re-executions as waste).
    let mut committed_work = 0.0f64;

    let mut attempts = 0u64;
    while position < n {
        attempts += 1;
        assert!(
            attempts <= config.max_task_attempts,
            "simulation exceeded {} task attempts (position {position}/{n}); \
             the scenario parameters make progress virtually impossible",
            config.max_task_attempts
        );

        let task = position + 1;
        let weight = scenario.chain.weight(task);

        // Fail-stop error during this task's computation?
        let fail_at = injector.next_fail_stop();
        if fail_at < weight {
            clock += fail_at;
            result.fail_stop_errors += 1;
            result.wasted_work += fail_at;
            record(&mut trace, clock, SimEvent::FailStop { index: task, elapsed: fail_at });
            // Disk recovery: memory content (and any pending corruption) is lost.
            let recovery = scenario.disk_recovery_cost(last_disk);
            clock += recovery;
            result.resilience_overhead += recovery;
            result.disk_rollbacks += 1;
            record(&mut trace, clock, SimEvent::DiskRollback { to_boundary: last_disk });
            // Work committed after the disk checkpoint must be redone.
            let redo = scenario.work(last_disk, position);
            result.wasted_work += redo;
            committed_work -= redo;
            position = last_disk;
            last_mem = last_disk;
            corrupted = false;
            continue;
        }

        // The task completes (possibly with a silent corruption).
        clock += weight;
        committed_work += weight;
        let silent_at = injector.next_silent();
        if silent_at < weight {
            corrupted = true;
            result.silent_errors += 1;
            record(&mut trace, clock, SimEvent::SilentError { index: task });
        }
        record(&mut trace, clock, SimEvent::TaskCompleted { index: task });
        position = task;

        // Apply the scheduled action at this boundary.
        let action = schedule.action(position);
        if action.has_guaranteed_verification() {
            clock += costs.guaranteed_verification;
            result.resilience_overhead += costs.guaranteed_verification;
            record(
                &mut trace,
                clock,
                SimEvent::GuaranteedVerification { boundary: position, detected: corrupted },
            );
            if corrupted {
                let recovery = scenario.memory_recovery_cost(last_mem);
                clock += recovery;
                result.resilience_overhead += recovery;
                result.memory_rollbacks += 1;
                record(&mut trace, clock, SimEvent::MemoryRollback { to_boundary: last_mem });
                let redo = scenario.work(last_mem, position);
                result.wasted_work += redo;
                committed_work -= redo;
                position = last_mem;
                corrupted = false;
                continue;
            }
            if action.has_memory_checkpoint() {
                clock += costs.memory_checkpoint;
                result.resilience_overhead += costs.memory_checkpoint;
                last_mem = position;
                record(&mut trace, clock, SimEvent::MemoryCheckpoint { boundary: position });
            }
            if action.has_disk_checkpoint() {
                clock += costs.disk_checkpoint;
                result.resilience_overhead += costs.disk_checkpoint;
                last_disk = position;
                record(&mut trace, clock, SimEvent::DiskCheckpoint { boundary: position });
            }
        } else if action.has_partial_verification() {
            clock += costs.partial_verification;
            result.resilience_overhead += costs.partial_verification;
            let detected = corrupted && injector.detect_with_probability(costs.partial_recall);
            record(
                &mut trace,
                clock,
                SimEvent::PartialVerification { boundary: position, detected, corrupted },
            );
            if corrupted && !detected {
                result.partial_misses += 1;
            }
            if detected {
                let recovery = scenario.memory_recovery_cost(last_mem);
                clock += recovery;
                result.resilience_overhead += recovery;
                result.memory_rollbacks += 1;
                record(&mut trace, clock, SimEvent::MemoryRollback { to_boundary: last_mem });
                let redo = scenario.work(last_mem, position);
                result.wasted_work += redo;
                committed_work -= redo;
                position = last_mem;
                corrupted = false;
                continue;
            }
        }
    }

    debug_assert!(!corrupted, "the terminal guaranteed verification cannot be bypassed");
    debug_assert!(
        (committed_work - scenario.chain.total_weight()).abs() < 1e-6,
        "committed work {committed_work} != total weight"
    );
    record(&mut trace, clock, SimEvent::Completed);
    result.makespan = clock;
    (result, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain2l_model::pattern::WeightPattern;
    use chain2l_model::platform::{scr, Platform};
    use chain2l_model::{Action, ResilienceCosts, Scenario, Schedule};

    fn scenario(platform: &Platform, n: usize, total: f64) -> Scenario {
        Scenario::paper_setup(platform, &WeightPattern::Uniform, n, total).unwrap()
    }

    #[test]
    fn error_free_run_is_work_plus_action_costs() {
        let platform = Platform::new("ideal", 1, 0.0, 0.0, 100.0, 10.0).unwrap();
        let s = Scenario::new(
            WeightPattern::Uniform.generate(10, 5_000.0).unwrap(),
            platform.clone(),
            ResilienceCosts::paper_defaults(&platform),
        )
        .unwrap();
        let schedule = Schedule::periodic(10, 2, Action::MemoryCheckpoint);
        let (result, trace) = simulate_run(&s, &schedule, RunConfig::with_seed(1)).unwrap();
        let expected = 5_000.0 + schedule.total_action_cost(&s.costs);
        assert!((result.makespan - expected).abs() < 1e-9);
        assert_eq!(result.fail_stop_errors, 0);
        assert_eq!(result.silent_errors, 0);
        assert_eq!(result.wasted_work, 0.0);
        assert!(!trace.completed(), "trace not recorded unless requested");
    }

    #[test]
    fn trace_is_recorded_when_requested_and_well_formed() {
        let s = scenario(&scr::hera(), 20, 25_000.0);
        let schedule = Schedule::periodic(20, 4, Action::MemoryCheckpoint);
        let config = RunConfig { seed: 3, record_trace: true, ..RunConfig::default() };
        let (result, trace) = simulate_run(&s, &schedule, config).unwrap();
        assert!(trace.completed());
        assert!(trace.is_well_formed());
        assert!(trace.task_completions() >= 20);
        assert!(result.makespan >= 25_000.0);
    }

    #[test]
    fn rejects_invalid_schedules() {
        let s = scenario(&scr::hera(), 5, 1000.0);
        assert!(simulate_run(&s, &Schedule::empty(5), RunConfig::default()).is_err());
        assert!(simulate_run(&s, &Schedule::terminal_only(4), RunConfig::default()).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let s = scenario(&scr::atlas(), 30, 25_000.0);
        let schedule = Schedule::periodic(30, 5, Action::MemoryCheckpoint);
        let a = simulate_run(&s, &schedule, RunConfig::with_seed(42)).unwrap().0;
        let b = simulate_run(&s, &schedule, RunConfig::with_seed(42)).unwrap().0;
        assert_eq!(a, b);
        let c = simulate_run(&s, &schedule, RunConfig::with_seed(43)).unwrap().0;
        assert!(a != c || a.fail_stop_errors == 0);
    }

    #[test]
    fn makespan_is_at_least_total_weight_plus_terminal_actions() {
        let s = scenario(&scr::coastal(), 15, 25_000.0);
        let schedule = Schedule::terminal_only(15);
        for seed in 0..50 {
            let (r, _) = simulate_run(&s, &schedule, RunConfig::with_seed(seed)).unwrap();
            let floor = 25_000.0
                + s.costs.guaranteed_verification
                + s.costs.memory_checkpoint
                + s.costs.disk_checkpoint;
            assert!(r.makespan >= floor - 1e-9, "seed {seed}: {}", r.makespan);
        }
    }

    #[test]
    fn high_fail_stop_rate_causes_disk_rollbacks_and_waste() {
        // MTBF = 200 s with 10 tasks of 100 s each: failures are essentially
        // guaranteed over the run.
        let platform = Platform::new("crashy", 1, 5e-3, 0.0, 10.0, 1.0).unwrap();
        let s = Scenario::new(
            WeightPattern::Uniform.generate(10, 1_000.0).unwrap(),
            platform.clone(),
            ResilienceCosts::paper_defaults(&platform),
        )
        .unwrap();
        let schedule = Schedule::every_task(10, Action::DiskCheckpoint);
        let mut total_failures = 0;
        for seed in 0..20 {
            let (r, _) = simulate_run(&s, &schedule, RunConfig::with_seed(seed)).unwrap();
            total_failures += r.fail_stop_errors;
            assert_eq!(r.memory_rollbacks, 0, "no silent errors injected");
            assert_eq!(r.disk_rollbacks, r.fail_stop_errors);
            if r.fail_stop_errors > 0 {
                assert!(r.wasted_work > 0.0);
            }
        }
        assert!(total_failures > 20, "expected many failures, got {total_failures}");
    }

    #[test]
    fn silent_errors_are_always_caught_before_completion() {
        // Pure silent-error platform with partial verifications of recall 0.5:
        // misses happen, but the terminal guaranteed verification always cleans
        // up, so every run completes with all work committed.
        let platform = Platform::new("sdc", 1, 0.0, 2e-3, 10.0, 1.0).unwrap();
        let chain = WeightPattern::Uniform.generate(10, 2_000.0).unwrap();
        let costs = ResilienceCosts::builder(&platform).partial_recall(0.5).build().unwrap();
        let s = Scenario::new(chain, platform, costs).unwrap();
        let mut schedule = Schedule::periodic(10, 5, Action::MemoryCheckpoint);
        for p in [1usize, 2, 3, 4, 6, 7, 8, 9] {
            schedule.set_action(p, Action::PartialVerification);
        }
        let mut saw_miss = false;
        let mut saw_detection = false;
        for seed in 0..200 {
            let config = RunConfig { seed, record_trace: true, ..RunConfig::default() };
            let (r, trace) = simulate_run(&s, &schedule, config).unwrap();
            assert!(trace.completed());
            saw_miss |= r.partial_misses > 0;
            saw_detection |= r.memory_rollbacks > 0;
            if r.silent_errors > 0 {
                // Every injected silent error must eventually trigger a
                // memory rollback (possibly after several misses).
                assert!(r.memory_rollbacks > 0, "seed {seed}: {r:?}");
            }
        }
        assert!(saw_miss, "recall 0.5 should produce at least one miss in 200 runs");
        assert!(saw_detection);
    }

    #[test]
    fn memory_checkpoints_limit_silent_rollback_distance() {
        // With a memory checkpoint after every task, a detected silent error
        // can only waste one task of work.
        let platform = Platform::new("sdc", 1, 0.0, 1e-3, 10.0, 1.0).unwrap();
        let s = Scenario::new(
            WeightPattern::Uniform.generate(10, 1_000.0).unwrap(),
            platform.clone(),
            ResilienceCosts::paper_defaults(&platform),
        )
        .unwrap();
        // Memory checkpoint after every task; the terminal boundary must be a
        // disk checkpoint so every memory interval closes inside a disk
        // interval (`Schedule::validate` rejects unenclosed memory
        // checkpoints).
        let mut schedule = Schedule::every_task(10, Action::MemoryCheckpoint);
        schedule.set_action(10, Action::DiskCheckpoint);
        for seed in 0..100 {
            let (r, _) = simulate_run(&s, &schedule, RunConfig::with_seed(seed)).unwrap();
            // Wasted work from silent errors is at most one task (100 s) per
            // rollback.
            assert!(
                r.wasted_work <= 100.0 * r.memory_rollbacks as f64 + 1e-9,
                "seed {seed}: {r:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "task attempts")]
    fn attempt_limit_guards_against_livelock() {
        // A pathological platform where every task attempt fails.
        let platform = Platform::new("hopeless", 1, 10.0, 0.0, 0.0, 0.0).unwrap();
        let s = Scenario::new(
            WeightPattern::Uniform.generate(2, 100.0).unwrap(),
            platform.clone(),
            ResilienceCosts::paper_defaults(&platform),
        )
        .unwrap();
        let schedule = Schedule::terminal_only(2);
        let config = RunConfig { seed: 1, record_trace: false, max_task_attempts: 1000 };
        let _ = simulate_run(&s, &schedule, config);
    }
}
