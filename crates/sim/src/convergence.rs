//! Adaptive Monte-Carlo campaigns: run replications until the confidence
//! interval of the mean makespan is tight enough (or a budget is exhausted).
//!
//! Fixed replication counts either waste time (easy, low-variance scenarios)
//! or deliver sloppy intervals (heavy-tailed scenarios with rare but huge
//! recoveries).  [`run_until_converged`] keeps adding batches of replications
//! until the 95 % confidence half-width drops below a caller-specified
//! fraction of the mean.

use crate::distribution::{DistributionCollector, MakespanDistribution};
use crate::engine::{simulate_with_injector, RunConfig};
use crate::faults::FaultInjector;
use crate::stats::{Welford, Z_95};
use chain2l_model::{ModelError, Scenario, Schedule};
use serde::{Deserialize, Serialize};

/// Stopping rule and budget of an adaptive campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceConfig {
    /// Target: stop once `ci_half_width / mean <= target_relative_half_width`.
    pub target_relative_half_width: f64,
    /// Replications per batch (the stopping rule is evaluated between batches).
    pub batch_size: usize,
    /// Hard cap on the total number of replications.
    pub max_replications: usize,
    /// Minimum number of replications before the stopping rule may trigger.
    pub min_replications: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ConvergenceConfig {
    fn default() -> Self {
        Self {
            target_relative_half_width: 1e-3,
            batch_size: 1_000,
            max_replications: 200_000,
            min_replications: 2_000,
            seed: 0xc0ffee,
        }
    }
}

/// Outcome of an adaptive campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// Whether the target half-width was reached within the budget.
    pub converged: bool,
    /// Replications actually run.
    pub replications: usize,
    /// Empirical mean makespan.
    pub mean: f64,
    /// 95 % confidence half-width at the end of the campaign.
    pub ci_half_width: f64,
    /// Relative half-width (`ci_half_width / mean`).
    pub relative_half_width: f64,
    /// The full makespan distribution (sorted samples).
    pub distribution: MakespanDistribution,
}

/// Runs batches of simulated executions until the confidence target is met or
/// the replication budget is exhausted.
///
/// # Errors
/// Returns [`ModelError::InvalidSchedule`] for invalid schedules and
/// [`ModelError::InvalidParameter`] for a non-positive target or batch size.
pub fn run_until_converged(
    scenario: &Scenario,
    schedule: &Schedule,
    config: ConvergenceConfig,
) -> Result<ConvergenceReport, ModelError> {
    schedule.validate(&scenario.chain)?;
    if config.target_relative_half_width <= 0.0 {
        return Err(ModelError::InvalidParameter {
            name: "target_relative_half_width",
            value: config.target_relative_half_width,
            expected: "a value > 0",
        });
    }
    if config.batch_size == 0 {
        return Err(ModelError::InvalidParameter {
            name: "batch_size",
            value: 0.0,
            expected: "at least one replication per batch",
        });
    }

    let mut injector = FaultInjector::new(
        scenario.platform.lambda_fail_stop,
        scenario.platform.lambda_silent,
        config.seed,
    );
    let run_config = RunConfig::default();
    let mut stats = Welford::new();
    let mut collector = DistributionCollector::with_capacity(config.min_replications);
    let mut converged = false;

    while stats.count() < config.max_replications as u64 {
        let remaining = config.max_replications - stats.count() as usize;
        let batch = config.batch_size.min(remaining);
        for _ in 0..batch {
            let (result, _) = simulate_with_injector(scenario, schedule, &mut injector, run_config);
            stats.push(result.makespan);
            collector.push(result.makespan);
        }
        if stats.count() >= config.min_replications as u64 {
            let half = Z_95 * stats.std_error();
            if stats.mean() > 0.0 && half / stats.mean() <= config.target_relative_half_width {
                converged = true;
                break;
            }
        }
    }

    let mean = stats.mean();
    let ci_half_width = Z_95 * stats.std_error();
    Ok(ConvergenceReport {
        converged,
        replications: stats.count() as usize,
        mean,
        ci_half_width,
        relative_half_width: if mean > 0.0 { ci_half_width / mean } else { f64::INFINITY },
        distribution: collector.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain2l_model::pattern::WeightPattern;
    use chain2l_model::platform::{scr, Platform};
    use chain2l_model::{Action, ResilienceCosts, Scenario, Schedule};

    fn hera(n: usize) -> Scenario {
        Scenario::paper_setup(&scr::hera(), &WeightPattern::Uniform, n, 25_000.0).unwrap()
    }

    #[test]
    fn rejects_bad_configs_and_schedules() {
        let s = hera(5);
        let schedule = Schedule::terminal_only(5);
        let config =
            ConvergenceConfig { target_relative_half_width: 0.0, ..ConvergenceConfig::default() };
        assert!(run_until_converged(&s, &schedule, config).is_err());
        let config = ConvergenceConfig { batch_size: 0, ..ConvergenceConfig::default() };
        assert!(run_until_converged(&s, &schedule, config).is_err());
        assert!(run_until_converged(&s, &Schedule::empty(5), ConvergenceConfig::default()).is_err());
    }

    #[test]
    fn deterministic_scenario_converges_immediately() {
        // Zero error rates: every replication is identical, so the first
        // stopping-rule evaluation succeeds.
        let platform = Platform::new("ideal", 1, 0.0, 0.0, 10.0, 1.0).unwrap();
        let s = Scenario::new(
            WeightPattern::Uniform.generate(5, 500.0).unwrap(),
            platform.clone(),
            ResilienceCosts::paper_defaults(&platform),
        )
        .unwrap();
        let schedule = Schedule::terminal_only(5);
        let config = ConvergenceConfig {
            min_replications: 100,
            batch_size: 100,
            max_replications: 10_000,
            ..ConvergenceConfig::default()
        };
        let report = run_until_converged(&s, &schedule, config).unwrap();
        assert!(report.converged);
        assert_eq!(report.replications, 100);
        assert_eq!(report.ci_half_width, 0.0);
        assert_eq!(report.distribution.min(), report.distribution.max());
    }

    #[test]
    fn converged_campaign_meets_its_target() {
        let s = hera(10);
        let schedule = Schedule::periodic(10, 2, Action::MemoryCheckpoint);
        let config = ConvergenceConfig {
            target_relative_half_width: 2e-3,
            batch_size: 2_000,
            min_replications: 2_000,
            max_replications: 100_000,
            seed: 11,
        };
        let report = run_until_converged(&s, &schedule, config).unwrap();
        assert!(report.converged, "{report:?}");
        assert!(report.relative_half_width <= 2e-3);
        assert_eq!(report.distribution.len(), report.replications);
        assert!(report.mean >= 25_000.0);
    }

    #[test]
    fn tiny_budget_reports_non_convergence() {
        let s = hera(10);
        let schedule = Schedule::terminal_only(10);
        let config = ConvergenceConfig {
            target_relative_half_width: 1e-6, // unreachable with this budget
            batch_size: 500,
            min_replications: 500,
            max_replications: 1_000,
            seed: 3,
        };
        let report = run_until_converged(&s, &schedule, config).unwrap();
        assert!(!report.converged);
        assert_eq!(report.replications, 1_000);
    }

    #[test]
    fn distribution_quantiles_bracket_the_mean() {
        let s = hera(10);
        let schedule = Schedule::periodic(10, 2, Action::MemoryCheckpoint);
        let config = ConvergenceConfig {
            target_relative_half_width: 5e-3,
            batch_size: 2_000,
            min_replications: 4_000,
            max_replications: 20_000,
            seed: 5,
        };
        let report = run_until_converged(&s, &schedule, config).unwrap();
        let p05 = report.distribution.quantile(0.05).unwrap();
        let p95 = report.distribution.quantile(0.95).unwrap();
        assert!(p05 <= report.mean && report.mean <= p95, "{p05} {} {p95}", report.mean);
        // The minimum possible makespan (no error at all) is a hard floor.
        let floor = 25_000.0 + schedule.total_action_cost(&s.costs);
        assert!(report.distribution.min().unwrap() >= floor - 1e-6);
    }
}
