//! Makespan distributions: histograms and percentiles over replications.
//!
//! Expected values (what the optimizer minimises) hide the tail behaviour a
//! facility operator cares about — "what is the 99th-percentile completion
//! time of this campaign?".  [`DistributionCollector`] keeps every observed
//! makespan, and [`MakespanDistribution`] answers percentile queries and
//! renders a coarse text histogram.

use serde::{Deserialize, Serialize};

/// Collects raw observations (one per replication).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DistributionCollector {
    samples: Vec<f64>,
}

impl DistributionCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collector expecting roughly `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { samples: Vec::with_capacity(capacity) }
    }

    /// Adds one observation.
    pub fn push(&mut self, makespan: f64) {
        self.samples.push(makespan);
    }

    /// Merges another collector into this one.
    pub fn merge(&mut self, other: &DistributionCollector) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of observations collected so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observation has been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Freezes the collector into a queryable distribution (sorts the samples).
    pub fn finish(mut self) -> MakespanDistribution {
        self.samples.sort_by(|a, b| a.partial_cmp(b).expect("makespans are finite"));
        MakespanDistribution { sorted: self.samples }
    }
}

/// A frozen, sorted sample of makespans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MakespanDistribution {
    sorted: Vec<f64>,
}

impl MakespanDistribution {
    /// Builds a distribution directly from raw samples.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        DistributionCollector { samples }.finish()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the distribution holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest observed makespan (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest observed makespan.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        chain2l_model::math::mean(&self.sorted)
    }

    /// Percentile by linear interpolation between order statistics
    /// (`q ∈ [0, 1]`); `None` when the distribution is empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.sorted.is_empty() {
            return None;
        }
        if self.sorted.len() == 1 {
            return Some(self.sorted[0]);
        }
        let position = q * (self.sorted.len() - 1) as f64;
        let lower = position.floor() as usize;
        let upper = position.ceil() as usize;
        let weight = position - lower as f64;
        Some(self.sorted[lower] * (1.0 - weight) + self.sorted[upper] * weight)
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Fraction of runs whose makespan does not exceed `deadline`.
    pub fn probability_within(&self, deadline: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let hit = self.sorted.partition_point(|&x| x <= deadline);
        hit as f64 / self.sorted.len() as f64
    }

    /// Renders a coarse text histogram with `bins` equal-width bins.
    pub fn histogram(&self, bins: usize) -> String {
        assert!(bins > 0, "need at least one bin");
        if self.sorted.is_empty() {
            return String::from("(no samples)\n");
        }
        let min = self.min().expect("non-empty");
        let max = self.max().expect("non-empty");
        let width = ((max - min) / bins as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; bins];
        for &x in &self.sorted {
            let mut idx = ((x - min) / width) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            counts[idx] += 1;
        }
        let tallest = counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &count) in counts.iter().enumerate() {
            let low = min + i as f64 * width;
            let high = low + width;
            let bar_len = (count * 50).div_ceil(tallest);
            out.push_str(&format!(
                "{low:>12.1} – {high:>12.1} | {:<50} {count}\n",
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_samples(n: usize) -> Vec<f64> {
        (0..n).map(|i| 100.0 + i as f64).collect()
    }

    #[test]
    fn collector_accumulates_and_merges() {
        let mut a = DistributionCollector::with_capacity(4);
        a.push(3.0);
        a.push(1.0);
        let mut b = DistributionCollector::new();
        b.push(2.0);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        let d = a.finish();
        assert_eq!(d.min(), Some(1.0));
        assert_eq!(d.max(), Some(3.0));
        assert_eq!(d.median(), Some(2.0));
    }

    #[test]
    fn quantiles_interpolate_linearly() {
        let d = MakespanDistribution::from_samples(uniform_samples(101));
        assert_eq!(d.quantile(0.0), Some(100.0));
        assert_eq!(d.quantile(1.0), Some(200.0));
        assert!((d.quantile(0.5).unwrap() - 150.0).abs() < 1e-12);
        assert!((d.quantile(0.95).unwrap() - 195.0).abs() < 1e-12);
        assert!((d.quantile(0.995).unwrap() - 199.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(MakespanDistribution::from_samples(vec![]).quantile(0.5), None);
        assert_eq!(MakespanDistribution::from_samples(vec![42.0]).quantile(0.9), Some(42.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        let _ = MakespanDistribution::from_samples(vec![1.0]).quantile(1.5);
    }

    #[test]
    fn probability_within_deadline() {
        let d = MakespanDistribution::from_samples(uniform_samples(100)); // 100..=199
        assert_eq!(d.probability_within(99.0), 0.0);
        assert_eq!(d.probability_within(1_000.0), 1.0);
        assert!((d.probability_within(149.5) - 0.5).abs() < 0.01);
        assert_eq!(MakespanDistribution::from_samples(vec![]).probability_within(1.0), 0.0);
    }

    #[test]
    fn mean_matches_expected() {
        let d = MakespanDistribution::from_samples(uniform_samples(11));
        assert!((d.mean() - 105.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_covers_all_samples_and_scales_bars() {
        let d = MakespanDistribution::from_samples(uniform_samples(1000));
        let h = d.histogram(10);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 10);
        let total: usize =
            lines.iter().map(|l| l.rsplit(' ').next().unwrap().parse::<usize>().unwrap()).sum();
        assert_eq!(total, 1000);
        assert!(lines.iter().any(|l| l.contains("##")));
    }

    #[test]
    fn histogram_handles_degenerate_distributions() {
        let d = MakespanDistribution::from_samples(vec![5.0; 20]);
        let h = d.histogram(4);
        assert!(h.contains("20"));
        let empty = MakespanDistribution::from_samples(vec![]);
        assert!(empty.histogram(4).contains("no samples"));
    }
}
