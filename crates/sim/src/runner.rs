//! Monte-Carlo replication runner.
//!
//! Runs many independent replications of [`crate::engine::simulate_run`] —
//! optionally across worker threads (`std::thread::scope`, one RNG stream
//! per worker) — and aggregates makespan and error statistics.  The runner is
//! the main tool used to cross-validate the analytical expectations of
//! `chain2l-core` against the execution semantics of the model.
//!
//! Campaigns are reproducible run-to-run for a fixed
//! [`MonteCarloConfig`]: worker `t` always draws from the stream
//! `seed + t`, and the per-worker accumulators are merged in worker order
//! after all threads join (merging through a shared lock in completion
//! order would make the floating-point totals depend on thread timing).

use crate::engine::{simulate_with_injector, RunConfig};
use crate::faults::FaultInjector;
use crate::stats::{Summary, Welford};
use chain2l_model::{ModelError, Scenario, Schedule};
use serde::{Deserialize, Serialize};

/// Configuration of a Monte-Carlo campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of independent replications.
    pub replications: usize,
    /// Base RNG seed; worker `t` uses the stream `seed + t`.
    pub seed: u64,
    /// Number of worker threads (`1` = run inline on the calling thread).
    pub threads: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self { replications: 10_000, seed: 0x5eed, threads: 1 }
    }
}

impl MonteCarloConfig {
    /// `replications` replications on a single thread with the default seed.
    pub fn with_replications(replications: usize) -> Self {
        Self { replications, ..Self::default() }
    }

    /// Sets the number of worker threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Aggregated outcome of a Monte-Carlo campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloReport {
    /// Makespan statistics over all replications.
    pub makespan: Summary,
    /// Average number of fail-stop errors per run.
    pub mean_fail_stop_errors: f64,
    /// Average number of silent errors per run.
    pub mean_silent_errors: f64,
    /// Average number of memory rollbacks per run.
    pub mean_memory_rollbacks: f64,
    /// Average number of disk rollbacks per run.
    pub mean_disk_rollbacks: f64,
    /// Average seconds of wasted (lost or re-executed) work per run.
    pub mean_wasted_work: f64,
    /// Average seconds of checkpoint/verification/recovery overhead per run.
    pub mean_resilience_overhead: f64,
    /// Number of replications.
    pub replications: usize,
}

impl MonteCarloReport {
    /// Relative difference between the empirical mean makespan and an
    /// analytical prediction: `(mean − predicted) / predicted`.
    pub fn relative_error_vs(&self, predicted: f64) -> f64 {
        (self.makespan.mean - predicted) / predicted
    }

    /// Whether `predicted` falls within the 95 % confidence interval of the
    /// empirical mean, widened by `slack_factor` standard errors.
    pub fn agrees_with(&self, predicted: f64, slack_factor: f64) -> bool {
        self.makespan.contains_with_slack(predicted, slack_factor)
    }
}

/// Per-worker accumulator merged at the end of the campaign.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerAccumulator {
    makespan: Welford,
    fail_stop: f64,
    silent: f64,
    mem_rollbacks: f64,
    disk_rollbacks: f64,
    wasted: f64,
    overhead: f64,
    runs: usize,
}

impl WorkerAccumulator {
    fn merge(&mut self, other: &WorkerAccumulator) {
        self.makespan.merge(&other.makespan);
        self.fail_stop += other.fail_stop;
        self.silent += other.silent;
        self.mem_rollbacks += other.mem_rollbacks;
        self.disk_rollbacks += other.disk_rollbacks;
        self.wasted += other.wasted;
        self.overhead += other.overhead;
        self.runs += other.runs;
    }
}

/// Runs a Monte-Carlo campaign of `config.replications` simulated executions.
///
/// # Errors
/// Returns [`ModelError::InvalidSchedule`] when the schedule is invalid for
/// the scenario, and [`ModelError::InvalidParameter`] when `replications == 0`.
pub fn run_monte_carlo(
    scenario: &Scenario,
    schedule: &Schedule,
    config: MonteCarloConfig,
) -> Result<MonteCarloReport, ModelError> {
    schedule.validate(&scenario.chain)?;
    if config.replications == 0 {
        return Err(ModelError::InvalidParameter {
            name: "replications",
            value: 0.0,
            expected: "at least one replication",
        });
    }
    let threads = config.threads.max(1).min(config.replications);

    let accumulate = |worker_index: usize, replications: usize| -> WorkerAccumulator {
        let mut acc = WorkerAccumulator::default();
        let mut injector = FaultInjector::new(
            scenario.platform.lambda_fail_stop,
            scenario.platform.lambda_silent,
            config.seed.wrapping_add(worker_index as u64),
        );
        let run_config = RunConfig::default();
        for _ in 0..replications {
            let (result, _) = simulate_with_injector(scenario, schedule, &mut injector, run_config);
            acc.makespan.push(result.makespan);
            acc.fail_stop += result.fail_stop_errors as f64;
            acc.silent += result.silent_errors as f64;
            acc.mem_rollbacks += result.memory_rollbacks as f64;
            acc.disk_rollbacks += result.disk_rollbacks as f64;
            acc.wasted += result.wasted_work;
            acc.overhead += result.resilience_overhead;
            acc.runs += 1;
        }
        acc
    };

    let total = if threads == 1 {
        accumulate(0, config.replications)
    } else {
        let per_worker = config.replications / threads;
        let remainder = config.replications % threads;
        // Join in spawn order and merge in worker order so the aggregated
        // floating-point totals are identical run-to-run for a fixed config.
        let workers: Vec<WorkerAccumulator> = std::thread::scope(|scope| {
            let accumulate = &accumulate;
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let replications = per_worker + usize::from(worker < remainder);
                    scope.spawn(move || accumulate(worker, replications))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("simulation worker panicked")).collect()
        });
        let mut total = WorkerAccumulator::default();
        for acc in &workers {
            total.merge(acc);
        }
        total
    };

    let runs = total.runs as f64;
    Ok(MonteCarloReport {
        makespan: total.makespan.summary(),
        mean_fail_stop_errors: total.fail_stop / runs,
        mean_silent_errors: total.silent / runs,
        mean_memory_rollbacks: total.mem_rollbacks / runs,
        mean_disk_rollbacks: total.disk_rollbacks / runs,
        mean_wasted_work: total.wasted / runs,
        mean_resilience_overhead: total.overhead / runs,
        replications: total.runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain2l_core::evaluator::expected_makespan;
    use chain2l_core::{optimize, Algorithm, PartialCostModel};
    use chain2l_model::pattern::WeightPattern;
    use chain2l_model::platform::{scr, Platform};
    use chain2l_model::{Action, ResilienceCosts, Scenario, Schedule};

    fn hera(n: usize) -> Scenario {
        Scenario::paper_setup(&scr::hera(), &WeightPattern::Uniform, n, 25_000.0).unwrap()
    }

    #[test]
    fn zero_replications_is_an_error() {
        let s = hera(5);
        let schedule = Schedule::terminal_only(5);
        let config = MonteCarloConfig { replications: 0, ..Default::default() };
        assert!(run_monte_carlo(&s, &schedule, config).is_err());
    }

    #[test]
    fn report_counts_every_replication() {
        let s = hera(10);
        let schedule = Schedule::terminal_only(10);
        let config = MonteCarloConfig { replications: 500, seed: 1, threads: 1 };
        let report = run_monte_carlo(&s, &schedule, config).unwrap();
        assert_eq!(report.replications, 500);
        assert_eq!(report.makespan.count, 500);
        assert!(report.makespan.mean >= 25_000.0);
    }

    #[test]
    fn multi_threaded_run_covers_all_replications() {
        let s = hera(10);
        let schedule = Schedule::periodic(10, 2, Action::MemoryCheckpoint);
        let config = MonteCarloConfig { replications: 1001, seed: 7, threads: 4 };
        let report = run_monte_carlo(&s, &schedule, config).unwrap();
        assert_eq!(report.replications, 1001);
        // Single-threaded run with the same total replication count lands in a
        // statistically compatible place (different streams, so not equal).
        let single = run_monte_carlo(
            &s,
            &schedule,
            MonteCarloConfig { replications: 1001, seed: 7, threads: 1 },
        )
        .unwrap();
        let diff = (report.makespan.mean - single.makespan.mean).abs();
        let scale = report.makespan.ci_half_width() + single.makespan.ci_half_width();
        assert!(diff <= 2.0 * scale + 1.0, "diff {diff}, scale {scale}");
    }

    #[test]
    fn same_config_is_reproducible() {
        let s = hera(8);
        let schedule = Schedule::periodic(8, 2, Action::MemoryCheckpoint);
        let config = MonteCarloConfig { replications: 300, seed: 99, threads: 1 };
        let a = run_monte_carlo(&s, &schedule, config).unwrap();
        let b = run_monte_carlo(&s, &schedule, config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn simulation_agrees_with_analytical_expectation_for_guaranteed_schedules() {
        // The §III-A pricing is exact for the simulated execution semantics,
        // so the empirical mean must bracket the analytical value.
        let s = hera(15);
        let sol = optimize(&s, Algorithm::TwoLevel);
        let config = MonteCarloConfig { replications: 20_000, seed: 2024, threads: 4 };
        let report = run_monte_carlo(&s, &sol.schedule, config).unwrap();
        assert!(
            report.agrees_with(sol.expected_makespan, 2.0),
            "analytical {} not within CI [{}, {}]",
            sol.expected_makespan,
            report.makespan.ci95_low,
            report.makespan.ci95_high
        );
        assert!(report.relative_error_vs(sol.expected_makespan).abs() < 0.01);
    }

    #[test]
    fn simulation_agrees_with_evaluator_for_handwritten_schedule() {
        let platform = Platform::new("mid", 32, 3e-6, 1e-5, 120.0, 12.0).unwrap();
        let chain = WeightPattern::Decrease.generate(12, 20_000.0).unwrap();
        let costs = ResilienceCosts::paper_defaults(&platform);
        let s = Scenario::new(chain, platform, costs).unwrap();
        let schedule = Schedule::periodic(12, 3, Action::MemoryCheckpoint);
        let predicted = expected_makespan(&s, &schedule, PartialCostModel::Refined).unwrap();
        let config = MonteCarloConfig { replications: 20_000, seed: 11, threads: 4 };
        let report = run_monte_carlo(&s, &schedule, config).unwrap();
        assert!(
            report.agrees_with(predicted, 2.0),
            "analytical {predicted} vs CI [{}, {}]",
            report.makespan.ci95_low,
            report.makespan.ci95_high
        );
    }

    #[test]
    fn error_counts_scale_with_rates() {
        let s = hera(10);
        let schedule = Schedule::terminal_only(10);
        let config = MonteCarloConfig { replications: 5_000, seed: 5, threads: 2 };
        let report = run_monte_carlo(&s, &schedule, config).unwrap();
        // Expected silent errors per attempt ≈ λ_s · W = 3.38e-6 · 25000 ≈ 0.085;
        // re-executions push the observed average slightly above that.
        assert!(report.mean_silent_errors > 0.05);
        assert!(report.mean_silent_errors < 0.2);
        // Fail-stop errors are rarer (λ_f · W ≈ 0.024).
        assert!(report.mean_fail_stop_errors > 0.01);
        assert!(report.mean_fail_stop_errors < 0.06);
        assert!(report.mean_wasted_work > 0.0);
    }
}
