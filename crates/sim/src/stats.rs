//! Streaming statistics over simulation replications.

use serde::{Deserialize, Serialize};

/// Two-sided 95 % normal quantile used for confidence intervals.
pub const Z_95: f64 = 1.959_963_984_540_054;

/// Welford online accumulator for mean and variance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Summary snapshot.
    pub fn summary(&self) -> Summary {
        let half = Z_95 * self.std_error();
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            ci95_low: self.mean() - half,
            ci95_high: self.mean() + half,
            min: self.min,
            max: self.max,
        }
    }
}

/// Frozen summary statistics of a set of replications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Lower bound of the normal-approximation 95 % confidence interval.
    pub ci95_low: f64,
    /// Upper bound of the normal-approximation 95 % confidence interval.
    pub ci95_high: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Whether `value` lies inside the 95 % confidence interval, widened by
    /// `slack_factor` standard errors on each side (`slack_factor = 0` checks
    /// the plain interval).
    pub fn contains_with_slack(&self, value: f64, slack_factor: f64) -> bool {
        if self.count == 0 {
            return false;
        }
        let se = if self.count > 0 { self.std_dev / (self.count as f64).sqrt() } else { 0.0 };
        let widen = slack_factor * se;
        value >= self.ci95_low - widen && value <= self.ci95_high + widen
    }

    /// Half-width of the confidence interval.
    pub fn ci_half_width(&self) -> f64 {
        (self.ci95_high - self.ci95_low) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_formulas() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn empty_and_single_observation_edge_cases() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);

        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 3.5);
        assert_eq!(w.max(), 3.5);
    }

    #[test]
    fn merge_equals_sequential_pushes() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0 + 50.0).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &data[..337] {
            left.push(x);
        }
        for &x in &data[337..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-6);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn summary_confidence_interval_brackets_the_mean() {
        let mut w = Welford::new();
        for i in 0..10_000 {
            w.push((i % 100) as f64);
        }
        let s = w.summary();
        assert!(s.ci95_low < s.mean && s.mean < s.ci95_high);
        assert!(s.contains_with_slack(s.mean, 0.0));
        assert!(!s.contains_with_slack(s.mean + 10.0 * s.std_dev, 0.0));
        assert!(s.ci_half_width() > 0.0);
    }
}
