//! Fault injection: sampling fail-stop and silent error arrivals.
//!
//! Both error sources are Poisson processes (§II of the paper), so inter-
//! arrival times are exponential and the process is memoryless: the simulator
//! samples a fresh arrival for every execution attempt of a work segment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples exponential arrival times for the two error processes.
///
/// A rate of `0` means the corresponding error source never fires
/// (arrival time `+∞`).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    lambda_fail_stop: f64,
    lambda_silent: f64,
    rng: StdRng,
}

impl FaultInjector {
    /// Creates an injector with the given rates and RNG seed.
    pub fn new(lambda_fail_stop: f64, lambda_silent: f64, seed: u64) -> Self {
        assert!(lambda_fail_stop >= 0.0 && lambda_fail_stop.is_finite());
        assert!(lambda_silent >= 0.0 && lambda_silent.is_finite());
        Self { lambda_fail_stop, lambda_silent, rng: StdRng::seed_from_u64(seed) }
    }

    /// Fail-stop error rate (per second).
    pub fn lambda_fail_stop(&self) -> f64 {
        self.lambda_fail_stop
    }

    /// Silent error rate (per second).
    pub fn lambda_silent(&self) -> f64 {
        self.lambda_silent
    }

    /// Samples the time (seconds from now) of the next fail-stop error.
    pub fn next_fail_stop(&mut self) -> f64 {
        Self::sample_exponential(&mut self.rng, self.lambda_fail_stop)
    }

    /// Samples the time (seconds from now) of the next silent error.
    pub fn next_silent(&mut self) -> f64 {
        Self::sample_exponential(&mut self.rng, self.lambda_silent)
    }

    /// Bernoulli draw with probability `p` (used for partial-verification recall).
    pub fn detect_with_probability(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.rng.gen::<f64>() < p
    }

    /// Inverse-CDF sampling of an exponential with rate `lambda`.
    fn sample_exponential(rng: &mut StdRng, lambda: f64) -> f64 {
        if lambda == 0.0 {
            return f64::INFINITY;
        }
        // Use 1 − U ∈ (0, 1] so ln never sees 0.
        let u: f64 = rng.gen::<f64>();
        -(1.0 - u).ln() / lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let mut inj = FaultInjector::new(0.0, 0.0, 42);
        for _ in 0..100 {
            assert!(inj.next_fail_stop().is_infinite());
            assert!(inj.next_silent().is_infinite());
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let mut a = FaultInjector::new(1e-5, 2e-5, 7);
        let mut b = FaultInjector::new(1e-5, 2e-5, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_fail_stop(), b.next_fail_stop());
            assert_eq!(a.next_silent(), b.next_silent());
            assert_eq!(a.detect_with_probability(0.8), b.detect_with_probability(0.8));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultInjector::new(1e-5, 2e-5, 1);
        let mut b = FaultInjector::new(1e-5, 2e-5, 2);
        let same = (0..100).filter(|_| a.next_fail_stop() == b.next_fail_stop()).count();
        assert!(same < 5);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let lambda = 1e-3;
        let mut inj = FaultInjector::new(lambda, 0.0, 12345);
        let n = 200_000usize;
        let mean: f64 = (0..n).map(|_| inj.next_fail_stop()).sum::<f64>() / n as f64;
        let expected = 1.0 / lambda;
        assert!(
            (mean - expected).abs() < 0.02 * expected,
            "empirical mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn exponential_samples_are_positive() {
        let mut inj = FaultInjector::new(0.5, 0.5, 99);
        for _ in 0..10_000 {
            let t = inj.next_fail_stop();
            assert!(t >= 0.0 && t.is_finite());
        }
    }

    #[test]
    fn detection_probability_is_respected() {
        let mut inj = FaultInjector::new(1e-5, 1e-5, 2024);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| inj.detect_with_probability(0.8)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.8).abs() < 0.01, "empirical recall {rate}");
        let hits = (0..trials).filter(|_| inj.detect_with_probability(1.0)).count();
        assert_eq!(hits, trials);
        let hits = (0..trials).filter(|_| inj.detect_with_probability(0.0)).count();
        assert_eq!(hits, 0);
    }
}
