#![forbid(unsafe_code)]
//! chain2l-lint — workspace-native static analysis for the four
//! invariants the test suite cannot see (DESIGN.md §9):
//!
//! 1. **Lock discipline** (`locks`): no guard held across a blocking
//!    re-acquisition of the same mutex — directly or through a call —
//!    and no acquisition-order cycles between blocking locks.
//! 2. **Determinism** (`determinism`): output-producing crates never
//!    observe hash iteration order, wall clocks, thread identity or
//!    pointer addresses.
//! 3. **Panic surface** (`panics`): the serve daemon path carries no
//!    unwrap/expect/panic!/indexing without a written justification.
//! 4. **Unsafe confinement** (`unsafety`): `unsafe` lives only in
//!    `vendor/mio_lite`; every other target root forbids it.
//!
//! The analyzer is dependency-free by construction: a hand-rolled lexer
//! ([`lexer`]), a per-file context ([`source`]) and four token-level
//! passes.  It must keep working in the offline build container, so it
//! can never grow a `syn`/`rustc` dependency — the passes are documented
//! approximations, tuned to the shapes this workspace actually uses and
//! regression-pinned by the fixture corpus under `fixtures/`.

pub mod determinism;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod source;
pub mod unsafety;

use source::{Scope, SourceFile};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Every rule the four passes can emit, keyed by a stable kebab-case
/// code — the code is the contract: allow comments, fixture markers and
/// the JSON output all speak it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    LockReacquire,
    LockHeldAcrossCall,
    LockOrderCycle,
    DetHashIter,
    DetTime,
    DetThreadId,
    DetPtr,
    PanicUnwrap,
    PanicExpect,
    PanicMacro,
    PanicIndex,
    UnsafeCode,
    MissingForbid,
}

impl Rule {
    pub fn code(self) -> &'static str {
        match self {
            Rule::LockReacquire => "lock-reacquire",
            Rule::LockHeldAcrossCall => "lock-held-across-call",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::DetHashIter => "det-hash-iter",
            Rule::DetTime => "det-time",
            Rule::DetThreadId => "det-thread-id",
            Rule::DetPtr => "det-ptr",
            Rule::PanicUnwrap => "panic-unwrap",
            Rule::PanicExpect => "panic-expect",
            Rule::PanicMacro => "panic-macro",
            Rule::PanicIndex => "panic-index",
            Rule::UnsafeCode => "unsafe-code",
            Rule::MissingForbid => "missing-forbid",
        }
    }
}

/// One diagnostic.  `allowed` carries the justification text when a
/// `// lint: allow(rule: reason)` suppression covers the site — allowed
/// findings are still reported (they are the audited inventory) but do
/// not fail the check.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub path: PathBuf,
    pub line: u32,
    pub col: u32,
    pub message: String,
    pub allowed: Option<String>,
}

impl Finding {
    pub fn new(sf: &SourceFile, rule: Rule, line: u32, col: u32, message: String) -> Self {
        let allowed = sf.allow_for(rule.code(), line).map(|a| a.reason.clone());
        Finding { rule, path: sf.path.clone(), line, col, message, allowed }
    }

    /// Machine-readable NDJSON record.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"rule\":\"{}\",", self.rule.code()));
        s.push_str(&format!("\"file\":\"{}\",", json_escape(&self.path.display().to_string())));
        s.push_str(&format!("\"line\":{},\"col\":{},", self.line, self.col));
        s.push_str(&format!("\"message\":\"{}\",", json_escape(&self.message)));
        match &self.allowed {
            Some(reason) => s.push_str(&format!("\"allowed\":\"{}\"", json_escape(reason))),
            None => s.push_str("\"allowed\":null"),
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.col,
            self.rule.code(),
            self.message
        )?;
        if let Some(reason) = &self.allowed {
            write!(f, " (allowed: {reason})")?;
        }
        Ok(())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Crates whose outputs must be bit-identical across runs — pass 2's
/// scope (`bench`/`service`/`cli` may time and log; `exec` timestamps
/// its recovery journal by design).
const DETERMINISM_CRATES: [&str; 4] = ["core", "analysis", "model", "sim"];

/// The serve daemon path inside `crates/service` — pass 3's scope.
/// `client.rs` joined when it grew the retry/backoff machinery: a panic
/// in its reconnect loop strands a whole batch, so it is held to the
/// daemon standard.  `loadgen.rs` stays out — harness tooling only.
const DAEMON_FILES: [&str; 8] = [
    "server.rs",
    "shard.rs",
    "frame.rs",
    "json.rs",
    "protocol.rs",
    "persist.rs",
    "chain2l-shard.rs",
    "client.rs",
];

/// Maps a workspace-relative path to its crate namespace and pass scope.
/// `None` means the file is out of scope entirely (vendored readiness
/// shim, fixture corpus).
pub fn scope_for(rel: &str) -> Option<(String, Scope)> {
    let rel = rel.replace('\\', "/");
    if rel.contains("fixtures/") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    let file = *parts.last()?;
    let mut scope = Scope::default();

    let krate: String;
    if parts.first() == Some(&"vendor") {
        krate = (*parts.get(1)?).to_string();
        if krate == "mio_lite" {
            return None; // the one sanctioned unsafe island
        }
        scope.unsafe_scan = true;
        scope.forbid_root = rel.ends_with("src/lib.rs");
        return Some((krate, scope));
    } else if parts.first() == Some(&"crates") {
        krate = (*parts.get(1)?).to_string();
    } else if parts.first() == Some(&"src")
        || parts.first() == Some(&"tests")
        || parts.first() == Some(&"examples")
    {
        krate = "chain2l".to_string();
    } else {
        return None;
    }

    scope.unsafe_scan = true;
    let in_src = parts.contains(&"src");
    scope.locks = in_src;
    scope.determinism = in_src && DETERMINISM_CRATES.contains(&krate.as_str());
    // The daemon path plus two core files: the snapshot decoder parses
    // untrusted input at daemon boot, and the failpoint registry runs
    // inside every I/O hot path whenever fault injection is armed — both
    // must be as panic-free as the daemon itself.
    scope.panics = (krate == "service" && in_src && DAEMON_FILES.contains(&file))
        || (krate == "core" && in_src && (file == "snapshot.rs" || file == "failpoint.rs"));
    scope.forbid_root = rel.ends_with("src/lib.rs")
        || rel.ends_with("src/main.rs")
        || parts.contains(&"bin")
        || parts.contains(&"benches")
        || parts.contains(&"examples");
    Some((krate, scope))
}

/// Walks the workspace from `root` and parses every in-scope `.rs` file,
/// sorted by path so findings order is stable.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    collect_rs(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::new();
    for rel in paths {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if let Some((krate, scope)) = scope_for(&rel_str) {
            let src = fs::read_to_string(root.join(&rel))?;
            files.push(SourceFile::parse(rel, &krate, scope, &src));
        }
    }
    Ok(files)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), ".git" | "target" | "fixtures" | ".github" | "related") {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Parses the fixture corpus under `crates/lint/fixtures/<pass>/`.  Each
/// file is its own crate namespace (its stem), so lock graphs do not
/// bleed between fixtures; the directory selects the single pass under
/// test.
pub fn fixture_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let base = root.join("crates/lint/fixtures");
    let mut files = Vec::new();
    let mut dirs: Vec<PathBuf> = fs::read_dir(&base)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let pass = dir.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
        let scope = match pass.as_str() {
            "locks" => Scope { locks: true, ..Scope::default() },
            "determinism" => Scope { determinism: true, ..Scope::default() },
            "panics" => Scope { panics: true, ..Scope::default() },
            "unsafety" => Scope { unsafe_scan: true, forbid_root: true, ..Scope::default() },
            _ => continue,
        };
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        entries.sort();
        for path in entries {
            let stem =
                path.file_stem().map(|s| s.to_string_lossy().to_string()).unwrap_or_default();
            let src = fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push(SourceFile::parse(rel, &stem, scope, &src));
        }
    }
    Ok(files)
}

/// Runs all four passes over pre-parsed files; findings come back sorted
/// by (path, line, col, rule) so output is deterministic.
pub fn run_passes(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    locks::run(files, &mut findings);
    determinism::run(files, &mut findings);
    panics::run(files, &mut findings);
    unsafety::run(files, &mut findings);
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    findings
}

/// Compares findings against the `//~ rule` markers of a fixture corpus.
/// Returns human-readable mismatch lines: every marker must be hit by an
/// unallowed finding of that rule on that line, and every unallowed
/// finding must be claimed by a marker (near-miss fixtures carry no
/// markers and must stay silent).
pub fn check_fixtures(files: &[SourceFile], findings: &[Finding]) -> Vec<String> {
    let mut problems = Vec::new();
    for sf in files {
        let mut expected: Vec<(u32, &str)> =
            sf.markers.iter().map(|(l, r)| (*l, r.as_str())).collect();
        let mut actual: Vec<(u32, &str)> = findings
            .iter()
            .filter(|f| f.path == sf.path && f.allowed.is_none())
            .map(|f| (f.line, f.rule.code()))
            .collect();
        expected.sort_unstable();
        actual.sort_unstable();
        let mut e = expected.iter().peekable();
        let mut a = actual.iter().peekable();
        loop {
            match (e.peek(), a.peek()) {
                (Some(&&ex), Some(&&ac)) if ex == ac => {
                    e.next();
                    a.next();
                }
                (Some(&&ex), Some(&&ac)) if ex < ac => {
                    problems.push(format!(
                        "{}:{}: expected `{}` was not reported",
                        sf.path.display(),
                        ex.0,
                        ex.1
                    ));
                    e.next();
                }
                (Some(&&ex), None) => {
                    problems.push(format!(
                        "{}:{}: expected `{}` was not reported",
                        sf.path.display(),
                        ex.0,
                        ex.1
                    ));
                    e.next();
                }
                (_, Some(&&ac)) => {
                    problems.push(format!(
                        "{}:{}: unexpected `{}` (no marker)",
                        sf.path.display(),
                        ac.0,
                        ac.1
                    ));
                    a.next();
                }
                (None, None) => break,
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_routing() {
        let (k, s) = scope_for("crates/core/src/engine.rs").expect("in scope");
        assert_eq!(k, "core");
        assert!(s.locks && s.determinism && s.unsafe_scan && !s.panics && !s.forbid_root);

        let (k, s) = scope_for("crates/service/src/server.rs").expect("in scope");
        assert_eq!(k, "service");
        assert!(s.panics && !s.determinism);

        let (_, s) = scope_for("crates/service/src/loadgen.rs").expect("in scope");
        assert!(!s.panics, "loadgen is harness tooling, not the daemon");
        let (_, s) = scope_for("crates/service/src/client.rs").expect("in scope");
        assert!(s.panics, "the retry/backoff client is held to the daemon standard");

        let (_, s) = scope_for("crates/service/src/persist.rs").expect("in scope");
        assert!(s.panics, "the persistence layer runs inside the daemon");
        let (k, s) = scope_for("crates/core/src/snapshot.rs").expect("in scope");
        assert_eq!(k, "core");
        assert!(s.panics && s.determinism, "snapshot decode parses untrusted input");
        let (_, s) = scope_for("crates/core/src/failpoint.rs").expect("in scope");
        assert!(s.panics, "the failpoint registry sits inside armed I/O hot paths");
        let (_, s) = scope_for("crates/core/src/cache.rs").expect("in scope");
        assert!(!s.panics, "only snapshot decode and failpoints join the panic pass from core");

        let (_, s) = scope_for("crates/core/src/lib.rs").expect("in scope");
        assert!(s.forbid_root);
        let (_, s) = scope_for("crates/bench/src/bin/dp_report.rs").expect("in scope");
        assert!(s.forbid_root);
        let (_, s) = scope_for("crates/bench/benches/dp_runtime.rs").expect("in scope");
        assert!(s.forbid_root && !s.locks);

        assert!(scope_for("vendor/mio_lite/src/lib.rs").is_none());
        let (_, s) = scope_for("vendor/serde/src/lib.rs").expect("in scope");
        assert!(s.unsafe_scan && s.forbid_root && !s.locks);
        let (k, s) = scope_for("vendor/wide_lite/src/lib.rs").expect("in scope");
        assert_eq!(k, "wide_lite");
        assert!(
            s.unsafe_scan && s.forbid_root,
            "the SIMD stub gets no unsafe exemption — only the readiness shim does"
        );

        assert!(scope_for("crates/lint/fixtures/locks/reacquire.rs").is_none());

        let (k, s) = scope_for("examples/quickstart.rs").expect("in scope");
        assert_eq!(k, "chain2l");
        assert!(s.forbid_root);
    }

    #[test]
    fn findings_respect_allows() {
        let sf = SourceFile::parse(
            PathBuf::from("d.rs"),
            "svc",
            Scope { panics: true, ..Scope::default() },
            "fn f() {\n    // lint: allow(panic-unwrap: startup config is static)\n    \
             x.unwrap();\n    y.unwrap();\n}\n",
        );
        let findings = run_passes(std::slice::from_ref(&sf));
        assert_eq!(findings.len(), 2);
        assert!(findings[0].allowed.is_some());
        assert!(findings[1].allowed.is_none());
    }

    #[test]
    fn json_output_is_escaped() {
        let sf = SourceFile::parse(
            PathBuf::from("j.rs"),
            "svc",
            Scope { panics: true, ..Scope::default() },
            "fn f() { x.unwrap(); }\n",
        );
        let findings = run_passes(std::slice::from_ref(&sf));
        let json = findings[0].to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rule\":\"panic-unwrap\""));
        assert!(json.contains("\"allowed\":null"));
    }
}
