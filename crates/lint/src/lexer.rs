//! A minimal Rust lexer: turns source text into a flat token stream with
//! line/column spans, plus the comment list (comments carry the
//! `lint: allow(...)` suppressions and the fixture `//~ rule` markers).
//!
//! The lexer understands exactly as much of the language as the passes
//! need: identifiers (including raw `r#ident`), lifetimes vs. character
//! literals, cooked/raw/byte string literals, nested block comments and
//! numeric literals (so `1.0` never splits into an index-like `.` token).
//! Everything it does not classify is a single-character punct.  Matching
//! delimiter groups are resolved separately (see [`match_delims`]) so the
//! passes can jump over `(…)`, `[…]`, `{…}` groups in one step — the
//! "token tree" view of the stream.

/// What a token is; `text` disambiguates within a kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished here).
    Ident,
    /// `'a` — a lifetime (or loop label), *not* a char literal.
    Lifetime,
    /// Numeric literal, including any suffix (`1_000u64`, `2.5e-3`).
    Num,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// Single-character punctuation.
    Punct,
    /// `(`, `[` or `{`.
    Open,
    /// `)`, `]` or `}`.
    Close,
}

/// One token with its 1-indexed source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a punct/delimiter with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        matches!(self.kind, TokKind::Punct | TokKind::Open | TokKind::Close) && self.text == text
    }
}

/// One comment (line or block, doc or plain) with its starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The lexed file: tokens (no trivia) and the comment list.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments.  Unterminated literals or
/// comments simply end the token stream at EOF — the lint never rejects a
/// file the compiler would (the compiler gate runs in the same CI).
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, col: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.toks.push(Tok { kind, text, line, col });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line);
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if c == '"' {
                self.cooked_string(line, col);
            } else if c == '\'' {
                self.lifetime_or_char(line, col);
            } else {
                self.bump();
                let kind = match c {
                    '(' | '[' | '{' => TokKind::Open,
                    ')' | ']' | '}' => TokKind::Close,
                    _ => TokKind::Punct,
                };
                self.push(kind, c.to_string(), line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    fn ident_or_prefixed_literal(&mut self, line: u32, col: u32) {
        let mut word = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // `r#ident` raw identifier (the `#` follows a lone `r` with an
        // ident right after — distinguish from the raw string `r#"…"`).
        if word == "r" && self.peek(0) == Some('#') && self.peek(1).is_some_and(is_ident_start) {
            self.bump(); // '#'
            let mut raw = String::new();
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    raw.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Ident, raw, line, col);
            return;
        }
        // String-literal prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'.
        let next = self.peek(0);
        match (word.as_str(), next) {
            ("r" | "br" | "b", Some('"')) | ("r" | "br", Some('#')) => {
                self.raw_or_byte_string(word.starts_with('r') || word == "br", line, col);
            }
            ("b", Some('\'')) => {
                self.bump(); // opening quote
                self.char_literal(line, col);
            }
            _ => self.push(TokKind::Ident, word, line, col),
        }
    }

    /// Consumes a raw (`#`-fenced, no escapes) or plain-quoted (escaped)
    /// string body starting at the current `#`/`"`.
    fn raw_or_byte_string(&mut self, raw_fence_allowed: bool, line: u32, col: u32) {
        let mut fences = 0usize;
        if raw_fence_allowed {
            while self.peek(0) == Some('#') {
                fences += 1;
                self.bump();
            }
        }
        if self.peek(0) != Some('"') {
            // `b#` or similar malformed input: emit what we saw as puncts.
            self.push(TokKind::Punct, "#".repeat(fences.max(1)), line, col);
            return;
        }
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '\\' && fences == 0 {
                // Cooked strings (no fence) process escapes; skip the next
                // char so an escaped quote cannot terminate the literal.
                if let Some(e) = self.bump() {
                    text.push('\\');
                    text.push(e);
                }
            } else if c == '"' {
                let mut matched = 0usize;
                while matched < fences && self.peek(0) == Some('#') {
                    matched += 1;
                    self.bump();
                }
                if matched == fences {
                    self.push(TokKind::Str, text, line, col);
                    return;
                }
                text.push('"');
                text.push_str(&"#".repeat(matched));
            } else {
                text.push(c);
            }
        }
        self.push(TokKind::Str, text, line, col); // EOF inside literal
    }

    fn cooked_string(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '"' => {
                    self.push(TokKind::Str, text, line, col);
                    return;
                }
                _ => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line, col); // EOF inside literal
    }

    /// At a `'`: a lifetime/label when an identifier follows with no
    /// closing quote right after (`'a`, `'static`), a char literal
    /// otherwise (`'x'`, `'\n'`, `'\''`).
    fn lifetime_or_char(&mut self, line: u32, col: u32) {
        self.bump(); // the quote
        let one = self.peek(0);
        let two = self.peek(1);
        if one.is_some_and(is_ident_start) && two != Some('\'') {
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, name, line, col);
        } else {
            self.char_literal(line, col);
        }
    }

    /// Consumes a char/byte literal body after its opening quote.
    fn char_literal(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '\'' => break,
                _ => text.push(c),
            }
        }
        self.push(TokKind::Char, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                // Digits, `_` separators, radix/suffix letters, exponent `e`.
                text.push(c);
                self.bump();
                // `1e-5` / `2E+8`: the sign belongs to the literal.
                if (c == 'e' || c == 'E')
                    && !text.starts_with("0x")
                    && matches!(self.peek(0), Some('+') | Some('-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    text.push(self.bump().expect("peeked"));
                }
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5` — but `1..n` and `1.max(2)` leave the dot alone.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line, col);
    }
}

/// For each `Open`/`Close` token, the index of its partner (`usize::MAX`
/// when unbalanced — the passes treat that as "no partner").
pub fn match_delims(toks: &[Tok]) -> Vec<usize> {
    let mut partner = vec![usize::MAX; toks.len()];
    let mut stack: Vec<(usize, &str)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Open => stack.push((i, t.text.as_str())),
            TokKind::Close => {
                let want = match t.text.as_str() {
                    ")" => "(",
                    "]" => "[",
                    _ => "{",
                };
                if let Some(&(open, text)) = stack.last() {
                    if text == want {
                        stack.pop();
                        partner[open] = i;
                        partner[i] = open;
                    }
                }
            }
            _ => {}
        }
    }
    partner
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_strings_and_comments_separate() {
        let lexed = lex("fn main() { // trailing note\n    let s = \"unsafe unwrap()\";\n}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("trailing note"));
        // The banned words inside the string literal are NOT ident tokens.
        assert!(!lexed.toks.iter().any(|t| t.is_ident("unsafe") || t.is_ident("unwrap")));
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = texts("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "x"));
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let lexed = lex("let a = r#\"quote \" inside\"#; /* outer /* inner */ done */ let b = 1;");
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "raw string is one literal"
        );
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
        assert!(lexed.toks.iter().any(|t| t.is_ident("b")), "lexing resumes after the comment");
    }

    #[test]
    fn numbers_keep_their_dots_but_not_ranges() {
        let toks = texts("let x = 1.5e-3; for i in 0..n { a[i]; } 1.max(2);");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1.5e-3"));
        // `0..n` stays `0`, `.`, `.`, `n` and `1.max` stays `1`, `.`, `max`.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "max"));
    }

    #[test]
    fn delimiters_match_up() {
        let lexed = lex("fn f(a: [u8; 4]) { g(a[0]); }");
        let partner = match_delims(&lexed.toks);
        for (i, t) in lexed.toks.iter().enumerate() {
            if t.kind == TokKind::Open {
                let j = partner[i];
                assert_ne!(j, usize::MAX, "unmatched open at {i}");
                assert_eq!(partner[j], i);
            }
        }
    }

    #[test]
    fn raw_identifiers_lex_as_plain_names() {
        let toks = texts("let r#fn = r#type;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "fn"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "type"));
    }
}
