#![forbid(unsafe_code)]
//! chain2l-lint CLI.
//!
//! ```text
//! cargo run -p lint -- --check            # lint the workspace, exit 1 on findings
//! cargo run -p lint -- --check --json     # NDJSON, one finding per line
//! cargo run -p lint -- --fixtures         # verify the fixture corpus markers
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or fixture mismatches), 2 usage.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
chain2l-lint: workspace static analysis (lock discipline, determinism,
panic surface, unsafe confinement)

USAGE:
    chain2l-lint [--check] [--fixtures] [--json] [--root <dir>]

OPTIONS:
    --check         lint the workspace sources (default action)
    --fixtures      run the seeded-violation corpus and verify every
                    `//~ rule` marker fires (and nothing else does)
    --json          emit findings as NDJSON instead of human-readable text
    --root <dir>    workspace root (default: current directory)
    -h, --help      show this help
";

fn main() -> ExitCode {
    let mut check = false;
    let mut fixtures = false;
    let mut json = false;
    let mut root = PathBuf::from(".");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--fixtures" => fixtures = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root requires a directory argument"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !check && !fixtures {
        check = true;
    }
    if !root.join("Cargo.toml").exists() {
        return usage_error(&format!(
            "`{}` does not look like the workspace root (no Cargo.toml); use --root",
            root.display()
        ));
    }

    let mut failed = false;
    if check {
        match run_check(&root, json) {
            Ok(clean) => failed |= !clean,
            Err(e) => {
                eprintln!("chain2l-lint: i/o error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if fixtures {
        match run_fixtures(&root) {
            Ok(clean) => failed |= !clean,
            Err(e) => {
                eprintln!("chain2l-lint: i/o error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("chain2l-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Lints the workspace.  Allowed findings are listed (they are the
/// audited panic/unsafe inventory) but only unallowed ones fail.
fn run_check(root: &Path, json: bool) -> std::io::Result<bool> {
    let files = lint::workspace_files(root)?;
    let findings = lint::run_passes(&files);
    let blocking: Vec<_> = findings.iter().filter(|f| f.allowed.is_none()).collect();
    let allowed = findings.len() - blocking.len();

    if json {
        for f in &findings {
            println!("{}", f.to_json());
        }
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "chain2l-lint: {} file(s), {} finding(s) ({} allowed, {} blocking)",
            files.len(),
            findings.len(),
            allowed,
            blocking.len()
        );
    }
    Ok(blocking.is_empty())
}

/// Runs the seeded-violation corpus: every marker must fire, nothing
/// unmarked may fire.
fn run_fixtures(root: &Path) -> std::io::Result<bool> {
    let files = lint::fixture_files(root)?;
    let findings = lint::run_passes(&files);
    let problems = lint::check_fixtures(&files, &findings);
    for p in &problems {
        eprintln!("{p}");
    }
    let markers: usize = files.iter().map(|f| f.markers.len()).sum();
    println!(
        "chain2l-lint: fixtures — {} file(s), {} marker(s), {} mismatch(es)",
        files.len(),
        markers,
        problems.len()
    );
    Ok(problems.is_empty())
}
