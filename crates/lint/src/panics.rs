//! Pass 3 — panic surface of the serve daemon.
//!
//! A panic in the daemon path kills the whole process and every
//! in-flight connection; `serve` is the one long-running surface in the
//! workspace, so its non-test code must either handle errors or carry a
//! written justification.  In files marked `scope.panics` this pass
//! flags:
//!
//! - `panic-unwrap`: `.unwrap()` on any receiver.
//! - `panic-expect`: `.expect("…")` with a *string-literal* argument —
//!   the `Result`/`Option` combinator.  Calls with non-string arguments
//!   are untouched; the JSON reader's own `expect(char)` parser method
//!   takes a char literal and must not alias this rule.
//! - `panic-macro`: `panic!`, `unreachable!`, `todo!`, `unimplemented!`,
//!   and `assert*!` invocations.
//! - `panic-index`: slice/array indexing `recv[…]` — an out-of-range
//!   index panics; the daemon should bounds-check or use `.get()`.
//!   `&x[..]` full-range reborrows are exempt.
//!
//! Every surviving site needs `// lint: allow(rule: reason)` on the
//! same or previous line — the allowlist is the checked-in inventory of
//! accepted panic sites, reviewed like code.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::{Finding, Rule};

const PANIC_MACROS: [&str; 7] =
    ["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

pub fn run(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for sf in files {
        if !sf.scope.panics {
            continue;
        }
        scan_file(sf, findings);
    }
}

fn scan_file(sf: &SourceFile, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < sf.toks.len() {
        if sf.in_test[i] {
            i += 1;
            continue;
        }
        let t = &sf.toks[i];
        match t.kind {
            TokKind::Ident => {
                if t.is_ident("unwrap") && sf.is_call(i) && preceded_by_dot(sf, i) {
                    findings.push(Finding::new(
                        sf,
                        Rule::PanicUnwrap,
                        t.line,
                        t.col,
                        "`.unwrap()` in the daemon path — a panic here kills the \
                         process and every in-flight connection"
                            .to_string(),
                    ));
                }
                if t.is_ident("expect")
                    && sf.is_call(i)
                    && preceded_by_dot(sf, i)
                    && sf.tok(i + 2).is_some_and(|a| a.kind == TokKind::Str)
                {
                    findings.push(Finding::new(
                        sf,
                        Rule::PanicExpect,
                        t.line,
                        t.col,
                        "`.expect(\"…\")` in the daemon path — convert to a \
                         recoverable error or justify with a lint allow"
                            .to_string(),
                    ));
                }
                if PANIC_MACROS.contains(&t.text.as_str())
                    && sf.tok(i + 1).is_some_and(|n| n.is_punct("!"))
                    && !preceded_by_dot(sf, i)
                {
                    findings.push(Finding::new(
                        sf,
                        Rule::PanicMacro,
                        t.line,
                        t.col,
                        format!("`{}!` in the daemon path — unconditional panic", t.text),
                    ));
                }
            }
            TokKind::Open if t.text == "[" && is_index_site(sf, i) => {
                findings.push(Finding::new(
                    sf,
                    Rule::PanicIndex,
                    t.line,
                    t.col,
                    "slice indexing in the daemon path — an out-of-range index \
                     panics; bounds-check or use `.get()`"
                        .to_string(),
                ));
            }
            _ => {}
        }
        i += 1;
    }
}

fn preceded_by_dot(sf: &SourceFile, i: usize) -> bool {
    i > 0 && sf.toks[i - 1].is_punct(".")
}

/// An `[` opens an index expression (not an array literal, attribute, or
/// pattern) when the previous token is an identifier or a closing `)`/`]`
/// — i.e. it postfixes a value.  A pure `[..]` full-range reborrow cannot
/// go out of bounds and is exempt.
fn is_index_site(sf: &SourceFile, open: usize) -> bool {
    let postfix = open > 0
        && match &sf.toks[open - 1] {
            p if p.kind == TokKind::Ident => {
                // `#[attr]`, `fn f<T: Trait>[…]` can't occur: ident-then-[
                // is always indexing or a generic-free macro pattern; but
                // exclude `mut` / keywords that start expressions.
                !matches!(p.text.as_str(), "mut" | "in" | "return" | "break")
            }
            p if p.kind == TokKind::Close && (p.text == ")" || p.text == "]") => true,
            _ => false,
        };
    if !postfix {
        return false;
    }
    // Exempt `[..]` exactly.
    let close = sf.partner[open];
    if close != usize::MAX
        && close == open + 3
        && sf.toks[open + 1].is_punct(".")
        && sf.toks[open + 2].is_punct(".")
    {
        return false;
    }
    true
}
