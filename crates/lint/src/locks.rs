//! Pass 1 — lock discipline.
//!
//! Extracts every `*.lock()` / `*.try_lock()` acquisition per function,
//! tracks how long the returned guard lives (named `let` bindings live to
//! the end of the enclosing block, temporaries to the end of their
//! statement — including `match` scrutinees and `if let` heads, which is
//! exactly the footgun that produced the PR 5 deadlock), and then checks
//! everything that happens *while a guard is live*:
//!
//! - a blocking re-acquisition of the same lock → `lock-reacquire`
//!   (guaranteed same-thread deadlock on `std::sync::Mutex`);
//! - a call into a workspace function whose transitive lock set contains
//!   the held lock → `lock-held-across-call` (the PR 5 shape: a guard
//!   temporary bound across a builder chain that later calls
//!   `self.stats()`, which locks the same mutex);
//! - any other acquisition → an edge in the cross-function acquisition
//!   graph; a strongly-connected component of *blocking* edges →
//!   `lock-order-cycle` (two threads can deadlock by acquiring in
//!   opposite orders).  `try_lock` edges never block, so they cannot
//!   complete a deadlock cycle — that is the `try_lock` discipline
//!   DESIGN.md §6 relies on, and the pass encodes it.
//!
//! Identity is name-based (the last path segment before `.lock()`, e.g.
//! `self.f64_pool.lock()` → `f64_pool`) and call resolution is
//! deliberately narrow — bare calls, `self.method(…)` and
//! `Self::method(…)` within the same crate — so that methods invoked *on
//! a guard* (`store.enforce(…)`) or on unrelated objects never alias a
//! lock-taking function of the same name.  Both approximations are sound
//! for the shapes this workspace promises to keep (see DESIGN.md §9).

use crate::source::SourceFile;
use crate::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// Standard stream handles whose `lock()` is reader/writer serialization,
/// not a mutex this pass reasons about.
const EXCLUDED_RECEIVERS: [&str; 3] = ["stdout", "stdin", "stderr"];

/// One function body found in a lock-scoped file.
struct Func {
    file: usize,
    name: String,
    /// Token range of the body, excluding the braces.
    body: (usize, usize),
}

/// One lock acquisition inside a function body.
struct Acquisition {
    /// Index of the `lock`/`try_lock` ident token.
    idx: usize,
    /// Name-based lock identity (last receiver path segment).
    lock: String,
    /// `lock()` blocks; `try_lock()` cannot deadlock the acquirer.
    blocking: bool,
}

/// A directed acquisition-order edge: `from` is held while `to` is taken.
#[derive(Debug)]
struct Edge {
    from: String,
    to: String,
    blocking: bool,
    file: usize,
    line: u32,
    col: u32,
}

pub fn run(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let funcs = collect_functions(files);

    // Per-crate direct lock sets and call lists, then the transitive
    // closure (lock name → is any blocking acquisition reachable).
    let mut crates: BTreeSet<&str> = BTreeSet::new();
    for f in &funcs {
        crates.insert(&files[f.file].crate_name);
    }
    for krate in crates {
        let members: Vec<&Func> =
            funcs.iter().filter(|f| files[f.file].crate_name == krate).collect();
        analyze_crate(files, &members, findings);
    }
}

fn collect_functions(files: &[SourceFile]) -> Vec<Func> {
    let mut funcs = Vec::new();
    for (file_idx, sf) in files.iter().enumerate() {
        if !sf.scope.locks {
            continue;
        }
        let mut i = 0;
        while i < sf.toks.len() {
            if sf.toks[i].is_ident("fn") && !sf.in_test[i] {
                if let Some(name_tok) = sf.tok(i + 1) {
                    if name_tok.kind == crate::lexer::TokKind::Ident {
                        let name = name_tok.text.clone();
                        // Find the body brace, jumping over parameter lists,
                        // return types and where clauses; a `;` first means
                        // a trait signature with no body.
                        let mut j = i + 2;
                        let mut body = None;
                        while j < sf.toks.len() {
                            let t = &sf.toks[j];
                            if t.text == "{" && t.kind == crate::lexer::TokKind::Open {
                                body = Some(j);
                                break;
                            }
                            if t.is_punct(";") {
                                break;
                            }
                            if t.kind == crate::lexer::TokKind::Open {
                                j = sf.skip_group(j);
                            } else {
                                j += 1;
                            }
                        }
                        if let Some(open) = body {
                            let close = sf.partner[open];
                            if close != usize::MAX {
                                funcs.push(Func { file: file_idx, name, body: (open + 1, close) });
                                // Do not skip the body: nested fns are
                                // collected too (their locks then count
                                // toward both, a sound over-approximation).
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    }
    funcs
}

/// Collects the acquisitions of one function body.
fn acquisitions(sf: &SourceFile, body: (usize, usize)) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for i in body.0..body.1 {
        let t = &sf.toks[i];
        if (t.is_ident("lock") || t.is_ident("try_lock")) && sf.is_call(i) {
            if let Some(recv) = sf.receiver_last_ident(i) {
                if !EXCLUDED_RECEIVERS.contains(&recv) {
                    out.push(Acquisition {
                        idx: i,
                        lock: recv.to_string(),
                        blocking: t.is_ident("lock"),
                    });
                }
            }
        }
    }
    out
}

/// A call at `i` that the pass resolves within the crate: bare `name(…)`,
/// `self.name(…)` or `Self::name(…)`.
fn resolvable_callee(sf: &SourceFile, i: usize) -> Option<&str> {
    if !sf.is_call(i) {
        return None;
    }
    let name = sf.toks[i].text.as_str();
    if name == "lock" || name == "try_lock" {
        return None; // acquisitions are handled separately
    }
    if i == 0 {
        return Some(name);
    }
    let prev = &sf.toks[i - 1];
    if prev.is_punct(".") {
        return sf.receiver_is_self(i).then_some(name);
    }
    if prev.is_punct(":") {
        // Only `Self::name(…)` resolves; `Type::name(…)` and
        // `path::name(…)` stay opaque (they may alias foreign items).
        return (i >= 3 && sf.toks[i - 2].is_punct(":") && sf.toks[i - 3].is_ident("Self"))
            .then_some(name);
    }
    Some(name)
}

/// Where a guard acquired at `idx` stops being live.
fn guard_scope_end(sf: &SourceFile, idx: usize) -> usize {
    // A temporary born inside a paren/bracket group (a call argument, e.g.
    // the PR 5 builder chain's `.field("…", &self.m.lock()….len())`) lives
    // to the end of the *outer* statement, so anchor the statement walk
    // outside every enclosing non-brace group first.
    let anchor = stmt_anchor(sf, idx);
    let start = sf.stmt_start(anchor);
    let head = &sf.toks[start];
    if head.is_ident("if") || head.is_ident("while") {
        return if_chain_end(sf, anchor);
    }
    if anchor == idx && head.is_ident("let") && binds_guard(sf, idx) {
        // `let guard = x.lock()…;` — the binding IS the guard; it lives to
        // the end of the enclosing block.
        return sf.enclosing_block_end(idx);
    }
    // Temporaries (including `match` scrutinees, whose statement extends
    // over the arms) live to the end of the full statement.
    sf.stmt_end(anchor)
}

/// Hoists `idx` out of every enclosing `(`/`[` group (but not `{` blocks,
/// which start their own statement lists), returning the index at the
/// statement's own nesting level.
fn stmt_anchor(sf: &SourceFile, idx: usize) -> usize {
    let mut j = idx;
    loop {
        let mut k = j;
        let mut open = None;
        while k > 0 {
            let p = k - 1;
            match sf.toks[p].kind {
                crate::lexer::TokKind::Close => {
                    let o = sf.partner[p];
                    if o == usize::MAX {
                        return j;
                    }
                    k = o;
                }
                crate::lexer::TokKind::Open => {
                    open = Some(p);
                    break;
                }
                _ => k = p,
            }
        }
        match open {
            Some(p) if sf.toks[p].text != "{" => j = p,
            _ => return j,
        }
    }
}

/// True when the chain after the acquisition runs to the statement's `;`
/// through guard adapters only (`?`, `.unwrap()`, `.expect(…)`) — i.e. the
/// `let` binds the guard itself.  Any other method consumes or borrows the
/// guard (`let n = m.lock().unwrap().len();` binds the value; the guard is
/// a temporary of the statement).
fn binds_guard(sf: &SourceFile, idx: usize) -> bool {
    let mut j = idx + 1;
    if sf.tok(j).is_some_and(|t| t.kind == crate::lexer::TokKind::Open && t.text == "(") {
        j = sf.skip_group(j);
    }
    loop {
        match sf.tok(j) {
            Some(t) if t.is_punct("?") => j += 1,
            Some(t) if t.is_punct(";") => return true,
            Some(t) if t.is_punct(".") => {
                let adapter =
                    sf.tok(j + 1).is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"));
                let called = sf
                    .tok(j + 2)
                    .is_some_and(|t| t.kind == crate::lexer::TokKind::Open && t.text == "(");
                if !(adapter && called) {
                    return false;
                }
                j = sf.skip_group(j + 2);
            }
            _ => return false,
        }
    }
}

/// End of an `if`/`while` statement: past its last chained block
/// (`if … { } else if … { } else { }`).
fn if_chain_end(sf: &SourceFile, from: usize) -> usize {
    let mut j = from;
    loop {
        // Find the next top-level brace block.
        while j < sf.toks.len() {
            let t = &sf.toks[j];
            if t.kind == crate::lexer::TokKind::Open {
                if t.text == "{" {
                    break;
                }
                j = sf.skip_group(j);
            } else if t.kind == crate::lexer::TokKind::Close {
                return j; // malformed / end of enclosing group
            } else {
                j += 1;
            }
        }
        if j >= sf.toks.len() {
            return j;
        }
        j = sf.skip_group(j);
        match sf.tok(j) {
            Some(t) if t.is_ident("else") => j += 1,
            _ => return j,
        }
    }
}

fn analyze_crate(files: &[SourceFile], funcs: &[&Func], findings: &mut Vec<Finding>) {
    // Direct lock sets and resolvable call lists per function name
    // (same-name functions merge — a sound over-approximation).
    let mut direct: BTreeMap<&str, BTreeMap<String, bool>> = BTreeMap::new();
    let mut calls: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for f in funcs {
        let sf = &files[f.file];
        let d = direct.entry(&f.name).or_default();
        for a in acquisitions(sf, f.body) {
            let blocking = d.get(&a.lock).copied().unwrap_or(false) || a.blocking;
            d.insert(a.lock, blocking);
        }
        let c = calls.entry(&f.name).or_default();
        for i in f.body.0..f.body.1 {
            if let Some(name) = resolvable_callee(sf, i) {
                if name != f.name {
                    c.insert(name.to_string());
                }
            }
        }
    }

    // Transitive closure: lock name → any *blocking* acquisition reachable.
    let mut trans: BTreeMap<&str, BTreeMap<String, bool>> = direct.clone();
    loop {
        let mut changed = false;
        let names: Vec<&str> = trans.keys().copied().collect();
        for name in names {
            let callees = calls.get(name).cloned().unwrap_or_default();
            let mut merged: Vec<(String, bool)> = Vec::new();
            for callee in &callees {
                if let Some(set) = trans.get(callee.as_str()) {
                    for (lock, blocking) in set {
                        merged.push((lock.clone(), *blocking));
                    }
                }
            }
            let own = trans.get_mut(name).expect("present by construction");
            for (lock, blocking) in merged {
                let entry = own.entry(lock).or_insert_with(|| {
                    changed = true;
                    blocking
                });
                if blocking && !*entry {
                    *entry = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Scan every guard scope: same-lock re-acquisitions, calls into
    // lock-taking functions, and order edges.
    let mut edges: Vec<Edge> = Vec::new();
    for f in funcs {
        let sf = &files[f.file];
        for a in acquisitions(sf, f.body) {
            let end = guard_scope_end(sf, a.idx).min(f.body.1);
            let mut j = a.idx + 1;
            // Step past the acquisition's own call parens.
            if sf.tok(j).is_some_and(|t| t.text == "(") {
                j = sf.skip_group(j);
            }
            while j < end {
                let t = &sf.toks[j];
                if (t.is_ident("lock") || t.is_ident("try_lock")) && sf.is_call(j) {
                    if let Some(recv) = sf.receiver_last_ident(j) {
                        if !EXCLUDED_RECEIVERS.contains(&recv) {
                            let blocking = t.is_ident("lock");
                            if recv == a.lock {
                                if blocking {
                                    push_finding(
                                        sf,
                                        findings,
                                        Rule::LockReacquire,
                                        j,
                                        format!(
                                            "`{}` is locked again while its guard from \
                                             {}:{} is still live — same-thread deadlock",
                                            a.lock, sf.toks[a.idx].line, sf.toks[a.idx].col
                                        ),
                                    );
                                }
                            } else {
                                edges.push(Edge {
                                    from: a.lock.clone(),
                                    to: recv.to_string(),
                                    blocking,
                                    file: f.file,
                                    line: t.line,
                                    col: t.col,
                                });
                            }
                        }
                    }
                } else if let Some(callee) = resolvable_callee(sf, j) {
                    if callee != f.name {
                        if let Some(set) = trans.get(callee) {
                            for (lock, blocking) in set {
                                if lock == &a.lock {
                                    if *blocking {
                                        push_finding(
                                            sf,
                                            findings,
                                            Rule::LockHeldAcrossCall,
                                            j,
                                            format!(
                                                "guard of `{}` (acquired at {}:{}) is \
                                                 held across a call to `{}`, which \
                                                 acquires `{}` again — same-thread \
                                                 deadlock",
                                                a.lock,
                                                sf.toks[a.idx].line,
                                                sf.toks[a.idx].col,
                                                callee,
                                                lock
                                            ),
                                        );
                                    }
                                } else {
                                    edges.push(Edge {
                                        from: a.lock.clone(),
                                        to: lock.clone(),
                                        blocking: *blocking,
                                        file: f.file,
                                        line: sf.toks[j].line,
                                        col: sf.toks[j].col,
                                    });
                                }
                            }
                        }
                    }
                }
                j += 1;
            }
        }
    }

    report_cycles(files, &edges, findings);
}

/// Finds strongly-connected components of the blocking acquisition-order
/// graph; each non-trivial SCC is one `lock-order-cycle` finding.
fn report_cycles(files: &[SourceFile], edges: &[Edge], findings: &mut Vec<Finding>) {
    let blocking: Vec<&Edge> = edges.iter().filter(|e| e.blocking).collect();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in &blocking {
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    let index: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let names: Vec<&str> = nodes.into_iter().collect();
    let n = names.len();
    let mut adj = vec![BTreeSet::new(); n];
    for e in &blocking {
        adj[index[e.from.as_str()]].insert(index[e.to.as_str()]);
    }
    // Reachability-based SCC detection (n is tiny: lock names per crate).
    let mut reach = vec![vec![false; n]; n];
    for (v, row) in reach.iter_mut().enumerate() {
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            for &w in &adj[u] {
                if !row[w] {
                    row[w] = true;
                    stack.push(w);
                }
            }
        }
    }
    let mut reported: BTreeSet<Vec<&str>> = BTreeSet::new();
    for (v, row_v) in reach.iter().enumerate() {
        if !row_v[v] {
            continue; // not on any cycle
        }
        let mut scc: Vec<&str> =
            (0..n).filter(|&w| row_v[w] && reach[w][v]).map(|w| names[w]).collect();
        scc.sort_unstable();
        if !reported.insert(scc.clone()) {
            continue;
        }
        // Report at the first blocking edge inside the component.
        let site = blocking
            .iter()
            .find(|e| scc.contains(&e.from.as_str()) && scc.contains(&e.to.as_str()))
            .expect("SCC implies an internal edge");
        let sf = &files[site.file];
        let finding = Finding::new(
            sf,
            Rule::LockOrderCycle,
            site.line,
            site.col,
            format!(
                "acquisition-order cycle between locks {{{}}} — two threads can \
                 deadlock by acquiring in opposite orders",
                scc.join(", ")
            ),
        );
        findings.push(finding);
    }
}

fn push_finding(sf: &SourceFile, findings: &mut Vec<Finding>, rule: Rule, idx: usize, msg: String) {
    let t = &sf.toks[idx];
    findings.push(Finding::new(sf, rule, t.line, t.col, msg));
}
