//! Per-file analysis context: the lexed token stream, delimiter partners,
//! `#[cfg(test)]` ranges, suppression comments and fixture markers, plus
//! the navigation helpers every pass shares (statement bounds, enclosing
//! blocks, method-receiver extraction).

use crate::lexer::{self, Comment, Tok, TokKind};
use std::path::PathBuf;

/// Which passes apply to a file (set from its workspace location, or
/// explicitly by the fixture tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// Pass 1 — lock discipline.
    pub locks: bool,
    /// Pass 2 — determinism (output-producing crates only).
    pub determinism: bool,
    /// Pass 3 — panic surface (the serve daemon path only).
    pub panics: bool,
    /// Pass 4 — the `unsafe` token scan (everything but `vendor/mio_lite`).
    pub unsafe_scan: bool,
    /// Pass 4 — the file is a crate/target root that must carry
    /// `#![forbid(unsafe_code)]`.
    pub forbid_root: bool,
}

/// One `lint: allow(rule: reason)` suppression parsed from a comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment sits on (it covers this line and the next).
    pub line: u32,
    /// The rule code it names, e.g. `panic-unwrap`.
    pub rule: String,
    /// The justification (required non-empty).
    pub reason: String,
    /// True for `allow-file(...)`: covers the whole file for that rule.
    pub whole_file: bool,
}

/// One lexed source file ready for the passes.
pub struct SourceFile {
    pub path: PathBuf,
    /// Workspace crate the file belongs to (namespace of the lock pass's
    /// call graph).
    pub crate_name: String,
    pub scope: Scope,
    pub toks: Vec<Tok>,
    /// Partner index of each delimiter token (`usize::MAX` = unmatched).
    pub partner: Vec<usize>,
    /// Token indices inside `#[cfg(test)]` / `#[test]` items.
    pub in_test: Vec<bool>,
    pub allows: Vec<Allow>,
    /// Fixture expectation markers: `//~ rule` comments as (line, rule).
    pub markers: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes `src` and computes every derived view.
    pub fn parse(path: PathBuf, crate_name: &str, scope: Scope, src: &str) -> Self {
        let lexed = lexer::lex(src);
        let partner = lexer::match_delims(&lexed.toks);
        let in_test = test_ranges(&lexed.toks, &partner);
        let (allows, markers) = parse_comments(&lexed.comments);
        Self {
            path,
            crate_name: crate_name.to_string(),
            scope,
            toks: lexed.toks,
            partner,
            in_test,
            allows,
            markers,
        }
    }

    /// The token at `i`, if any.
    pub fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    /// Index just past the group opened at `open` (or `open + 1` when the
    /// delimiter is unmatched).
    pub fn skip_group(&self, open: usize) -> usize {
        match self.partner.get(open) {
            Some(&close) if close != usize::MAX && close > open => close + 1,
            _ => open + 1,
        }
    }

    /// Start index of the statement containing token `i`: walks backwards
    /// over sibling tokens (jumping whole delimiter groups) until a `;`, an
    /// enclosing `{`/`(`/`[`, or the start of the file.
    pub fn stmt_start(&self, i: usize) -> usize {
        let mut j = i;
        while j > 0 {
            let prev = j - 1;
            let t = &self.toks[prev];
            match t.kind {
                TokKind::Close => {
                    let open = self.partner[prev];
                    if open == usize::MAX {
                        return j;
                    }
                    // A closed group `{…}` directly before us usually ends
                    // the previous item (fn body, match, if/else) — treat a
                    // brace group as a statement boundary unless it is an
                    // expression operand (preceded by `=`/`(`/`,`-style
                    // puncts, e.g. `let x = loop { … };`), which we accept
                    // as over-splitting: passes only ever *narrow* scopes
                    // with this, never widen them.
                    if t.text == "}" {
                        return j;
                    }
                    j = open;
                }
                TokKind::Open => return j,
                TokKind::Punct if t.text == ";" => return j,
                _ => j = prev,
            }
        }
        0
    }

    /// Index just past the end of the statement containing token `i`:
    /// walks forward over sibling tokens until just past a `;`, or to an
    /// enclosing close delimiter / EOF.  Brace groups are jumped, so an
    /// `if … { … } else { … }` statement ends after its last block (the
    /// next iteration then sees the following token).
    pub fn stmt_end(&self, i: usize) -> usize {
        let mut j = i;
        while j < self.toks.len() {
            let t = &self.toks[j];
            match t.kind {
                TokKind::Open => j = self.skip_group(j),
                TokKind::Close => return j,
                TokKind::Punct if t.text == ";" => return j + 1,
                _ => j += 1,
            }
        }
        self.toks.len()
    }

    /// Index of the close delimiter of the innermost brace block containing
    /// token `i` (EOF when at the top level): the approximate scope of a
    /// `let`-bound guard.
    pub fn enclosing_block_end(&self, i: usize) -> usize {
        let mut j = i;
        while j < self.toks.len() {
            let t = &self.toks[j];
            match t.kind {
                TokKind::Open => j = self.skip_group(j),
                TokKind::Close => return j,
                _ => j += 1,
            }
        }
        self.toks.len()
    }

    /// For a method call `recv.name(…)` whose `name` ident sits at `i`,
    /// the last identifier of the receiver path: `self.f64_pool.lock()` →
    /// `f64_pool`, `stdout().lock()` → `stdout`, `map.drain()` → `map`.
    /// `None` when `i` is not preceded by `.` or the receiver is opaque.
    pub fn receiver_last_ident(&self, i: usize) -> Option<&str> {
        if i < 2 || !self.toks[i - 1].is_punct(".") {
            return None;
        }
        let mut j = i - 1; // the dot
        while j > 0 {
            let prev = j - 1;
            match self.toks[prev].kind {
                TokKind::Ident => return Some(&self.toks[prev].text),
                TokKind::Close => {
                    // `stdout().lock()`: jump the call parens, then expect
                    // the callee ident right before them.
                    let open = self.partner[prev];
                    if open == usize::MAX || open == 0 {
                        return None;
                    }
                    j = open;
                }
                TokKind::Punct if self.toks[prev].text == "." || self.toks[prev].text == ":" => {
                    j = prev;
                }
                _ => return None,
            }
        }
        None
    }

    /// True when the method call at ident `i` is invoked directly on
    /// `self` (`self.name(…)`, not `self.field.name(…)`).
    pub fn receiver_is_self(&self, i: usize) -> bool {
        i >= 2
            && self.toks[i - 1].is_punct(".")
            && self.toks[i - 2].is_ident("self")
            && (i < 3 || !self.toks[i - 3].is_punct("."))
    }

    /// True when token `i` is an identifier immediately followed by `(` —
    /// the shape of any call or tuple-struct construction.
    pub fn is_call(&self, i: usize) -> bool {
        self.toks[i].kind == TokKind::Ident
            && self.toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Open && t.text == "(")
    }

    /// Suppressions matching a finding of `rule` at `line`: a same-line or
    /// previous-line `lint: allow(rule: …)`, or a file-wide
    /// `lint: allow-file(rule: …)`.
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && (a.whole_file || a.line == line || a.line + 1 == line))
    }
}

/// Marks every token inside a `#[cfg(test)]` item or `#[test]` function.
fn test_ranges(toks: &[Tok], partner: &[usize]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Open && t.text == "[")
        {
            let attr_open = i + 1;
            let attr_close = partner[attr_open];
            if attr_close != usize::MAX && is_test_attr(&toks[attr_open + 1..attr_close]) {
                // Skip any further attributes, then mark the body of the
                // item that follows (`mod … { … }`, `fn … { … }`).
                let mut j = attr_close + 1;
                while j < toks.len()
                    && toks[j].is_punct("#")
                    && toks.get(j + 1).is_some_and(|t| t.text == "[")
                {
                    let close = partner[j + 1];
                    j = if close == usize::MAX { j + 2 } else { close + 1 };
                }
                // Find the item's brace body, jumping over parameter lists
                // and generics; give up at `;` (e.g. a cfg'd `use`).
                let mut k = j;
                let mut body = None;
                while k < toks.len() {
                    match toks[k].kind {
                        TokKind::Open if toks[k].text == "{" => {
                            body = Some(k);
                            break;
                        }
                        TokKind::Open => k = partner[k].wrapping_add(1).max(k + 1),
                        TokKind::Punct if toks[k].text == ";" => break,
                        TokKind::Close => break,
                        _ => k += 1,
                    }
                }
                if let Some(open) = body {
                    let close = partner[open];
                    if close != usize::MAX {
                        for flag in &mut in_test[i..=close] {
                            *flag = true;
                        }
                        i = close + 1;
                        continue;
                    }
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    in_test
}

/// `cfg(test)` / `cfg(all(test, …))` / bare `test` attribute bodies.
fn is_test_attr(body: &[Tok]) -> bool {
    match body.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Extracts `lint: allow(rule: reason)` / `lint: allow-file(rule: reason)`
/// suppressions and `//~ rule` fixture markers from the comment list.
fn parse_comments(comments: &[Comment]) -> (Vec<Allow>, Vec<(u32, String)>) {
    let mut allows = Vec::new();
    let mut markers = Vec::new();
    for c in comments {
        if let Some(rest) = c.text.trim_start_matches('/').trim().strip_prefix('~') {
            let rule = rest.split_whitespace().next().unwrap_or("").to_string();
            if !rule.is_empty() {
                markers.push((c.line, rule));
            }
        }
        let mut text = c.text.as_str();
        while let Some(at) = text.find("lint: ") {
            text = &text[at + "lint: ".len()..];
            let whole_file = text.starts_with("allow-file(");
            let keyword = if whole_file { "allow-file(" } else { "allow(" };
            let Some(args) = text.strip_prefix(keyword) else { continue };
            let Some(end) = args.find(')') else { continue };
            let inner = &args[..end];
            let Some((rule, reason)) = inner.split_once(':') else { continue };
            let (rule, reason) = (rule.trim(), reason.trim());
            if !rule.is_empty() && !reason.is_empty() {
                allows.push(Allow {
                    line: c.line,
                    rule: rule.to_string(),
                    reason: reason.to_string(),
                    whole_file,
                });
            }
            text = &args[end..];
        }
    }
    (allows, markers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("mem.rs"), "t", Scope::default(), src)
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let f = file(
            "fn live() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\n\
             fn also_live() {}",
        );
        let unwraps: Vec<bool> = f
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| f.in_test[i])
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let live = f.toks.iter().position(|t| t.is_ident("also_live")).expect("present");
        assert!(!f.in_test[live]);
    }

    #[test]
    fn allow_comments_parse_and_match() {
        let f = file(
            "// lint: allow(panic-unwrap: startup only, config is static)\n\
             fn f() { x.unwrap(); }\n\
             // lint: allow-file(panic-index: slab indices are loop-owned)\n",
        );
        assert_eq!(f.allows.len(), 2);
        assert!(f.allow_for("panic-unwrap", 2).is_some(), "next-line coverage");
        assert!(f.allow_for("panic-unwrap", 4).is_none());
        assert!(f.allow_for("panic-index", 999).is_some(), "file-wide coverage");
        assert!(f.allow_for("panic-expect", 2).is_none(), "rule codes must match");
    }

    #[test]
    fn allow_requires_rule_and_reason() {
        let f = file("// lint: allow(panic-unwrap:)\n// lint: allow(: reasonless)\nfn f() {}");
        assert!(f.allows.is_empty());
    }

    #[test]
    fn fixture_markers_parse() {
        let f = file("fn f() { x.unwrap(); } //~ panic-unwrap\n");
        assert_eq!(f.markers, vec![(1, "panic-unwrap".to_string())]);
    }

    #[test]
    fn statement_and_scope_bounds() {
        let f = file("fn f() { let a = g(1); h(2); }");
        let h = f.toks.iter().position(|t| t.is_ident("h")).expect("present");
        let start = f.stmt_start(h);
        assert!(f.toks[start].is_ident("h"));
        let end = f.stmt_end(h);
        assert!(f.toks[end - 1].is_punct(";"));
        let close = f.enclosing_block_end(h);
        assert!(f.toks[close].is_punct("}"));
    }

    #[test]
    fn receiver_extraction() {
        let f = file("fn f() { self.f64_pool.lock(); stdout().lock(); map.drain(); }");
        let receivers: Vec<String> = f
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("lock") || t.is_ident("drain"))
            .filter_map(|(i, _)| f.receiver_last_ident(i).map(str::to_string))
            .collect();
        assert_eq!(receivers, vec!["f64_pool", "stdout", "map"]);
    }

    #[test]
    fn self_method_detection() {
        let f = file("fn f() { self.stats(); self.cache.clear(); free(); }");
        let stats = f.toks.iter().position(|t| t.is_ident("stats")).expect("present");
        let clear = f.toks.iter().position(|t| t.is_ident("clear")).expect("present");
        assert!(f.receiver_is_self(stats));
        assert!(!f.receiver_is_self(clear));
    }
}
