//! Pass 4 — unsafe confinement.
//!
//! The workspace promise is that `unsafe` lives only in the vendored
//! readiness-loop shim (`vendor/mio_lite`, which must issue raw
//! `epoll`/`kqueue` syscalls).  Everywhere else:
//!
//! - `unsafe-code`: any `unsafe` token outside the vendored shim is a
//!   finding.  Test-harness allocator instrumentation (the counting
//!   `GlobalAlloc` used by the alloc-free gate) carries a written
//!   `// lint: allow(unsafe-code: …)` justification instead of moving
//!   the code.
//! - `missing-forbid`: every crate/binary root in scope must declare
//!   `#![forbid(unsafe_code)]` so the compiler enforces the invariant,
//!   not just this lint.  A root is exempt when it contains an
//!   *allowed* unsafe site (forbid would reject the justified code).

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::{Finding, Rule};

pub fn run(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for sf in files {
        let mut has_allowed_unsafe = false;
        if sf.scope.unsafe_scan {
            for t in &sf.toks {
                if t.kind == TokKind::Ident && t.text == "unsafe" {
                    let f = Finding::new(
                        sf,
                        Rule::UnsafeCode,
                        t.line,
                        t.col,
                        "`unsafe` outside vendor/mio_lite — the workspace confines \
                         unsafe code to the vendored readiness shim"
                            .to_string(),
                    );
                    if f.allowed.is_some() {
                        has_allowed_unsafe = true;
                    }
                    findings.push(f);
                }
            }
        }
        if sf.scope.forbid_root && !has_allowed_unsafe && !has_forbid(sf) {
            findings.push(Finding::new(
                sf,
                Rule::MissingForbid,
                1,
                1,
                "crate root lacks `#![forbid(unsafe_code)]` — the compiler should \
                 enforce unsafe confinement, not just this lint"
                    .to_string(),
            ));
        }
    }
}

/// Looks for `#![forbid(unsafe_code)]` anywhere in the file (inner
/// attributes must be at the top, but position doesn't matter for the
/// check).
fn has_forbid(sf: &SourceFile) -> bool {
    let mut i = 0;
    while i + 1 < sf.toks.len() {
        if sf.toks[i].is_punct("#")
            && sf.toks[i + 1].is_punct("!")
            && sf.tok(i + 2).is_some_and(|t| t.kind == TokKind::Open && t.text == "[")
        {
            let close = sf.partner[i + 2];
            if close != usize::MAX {
                let inner: Vec<&str> =
                    sf.toks[i + 3..close].iter().map(|t| t.text.as_str()).collect();
                if inner.contains(&"forbid") && inner.contains(&"unsafe_code") {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}
