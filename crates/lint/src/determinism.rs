//! Pass 2 — determinism in output-producing crates.
//!
//! The workspace's core guarantee is byte-identical artifacts across
//! runs, thread counts and shard counts; every source of run-to-run
//! variation in an output path breaks it silently.  In the output crates
//! (`core`, `analysis`, `model`, `sim`) this pass bans:
//!
//! - **hash-order iteration** (`det-hash-iter`): iterating a `HashMap` /
//!   `HashSet` observes `RandomState`'s per-process seed.  Keyed lookups
//!   (`get`, `insert`, `contains_key`) stay fine; iteration requires an
//!   ordered structure (`BTreeMap`, `Vec`, the intrusive `LruList`) or
//!   the cache's stable-hash buckets.
//! - **wall-clock values** (`det-time`): `SystemTime` / `Instant` readings
//!   feed elapsed-time conditionals or timestamps into outputs.  Timing
//!   belongs in `bench`/`service`, outside this scope.
//! - **thread identity and addresses** (`det-thread-id`, `det-ptr`):
//!   `thread::current().id()`, `ThreadId`, and pointer-to-integer casts
//!   (`.as_ptr() as usize`, `x as *const T as usize`) vary per run/ASLR.
//!
//! Tracking is name-based per file: a name is "hash-typed" when declared
//! with a `HashMap`/`HashSet` annotation (struct fields, `let` types) or
//! bound by `let g = <hash-name>.lock()…` (a guard of a `Mutex<HashMap>`),
//! or aliased by a bare `let a = [&[mut]] <hash-name>;`.  Collecting into
//! a `Vec` and sorting does NOT mark the new name — but the `.iter()` /
//! `.keys()` call doing the collecting is still flagged: the sanctioned
//! fixes are ordered structures, not sort-after-collect.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::{Finding, Rule};
use std::collections::BTreeSet;

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

pub fn run(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for sf in files {
        if !sf.scope.determinism {
            continue;
        }
        let hash_names = collect_hash_names(sf);
        scan_file(sf, &hash_names, findings);
    }
}

/// Names (fields and locals) declared with a hash-collection type in this
/// file, plus guards/aliases derived from them.
fn collect_hash_names(sf: &SourceFile) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = BTreeSet::new();
    // Two fixpoint-free passes are enough in practice (fields first, then
    // locals that reference them); run the local scan twice so a guard of
    // a guard still resolves.
    for _ in 0..2 {
        let mut i = 0;
        while i < sf.toks.len() {
            // `name : … HashMap/HashSet …` (struct field or typed let).
            if sf.toks[i].kind == TokKind::Ident
                && sf.tok(i + 1).is_some_and(|t| t.is_punct(":"))
                && !sf.tok(i + 2).is_some_and(|t| t.is_punct(":"))
                && type_annotation_is_hash(sf, i + 2)
            {
                names.insert(sf.toks[i].text.clone());
            }
            // `let [mut] name = <init>;` where init propagates hash-ness.
            if sf.toks[i].is_ident("let") {
                let mut j = i + 1;
                if sf.tok(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if sf.tok(j).is_some_and(|t| t.kind == TokKind::Ident) {
                    let name = sf.toks[j].text.clone();
                    // Skip an optional `: type` annotation up to the `=`.
                    let mut k = j + 1;
                    while k < sf.toks.len()
                        && !sf.toks[k].is_punct("=")
                        && !sf.toks[k].is_punct(";")
                    {
                        if sf.toks[k].kind == TokKind::Open {
                            k = sf.skip_group(k);
                        } else {
                            k += 1;
                        }
                    }
                    if sf.tok(k).is_some_and(|t| t.is_punct("="))
                        && init_propagates_hash(sf, k + 1, &names)
                    {
                        names.insert(name);
                    }
                }
            }
            i += 1;
        }
    }
    names
}

/// Scans a type annotation starting at `i` (just past the `:`) up to the
/// enclosing `,` / `;` / `=` / close delimiter, looking for a hash type.
/// Angle brackets are tracked so `HashMap<K, V>`'s comma does not end the
/// scan early.
fn type_annotation_is_hash(sf: &SourceFile, start: usize) -> bool {
    let mut angle = 0i32;
    let mut j = start;
    while j < sf.toks.len() {
        let t = &sf.toks[j];
        match t.kind {
            TokKind::Ident if HASH_TYPES.contains(&t.text.as_str()) => return true,
            TokKind::Punct if t.text == "<" => angle += 1,
            TokKind::Punct if t.text == ">" => angle -= 1,
            TokKind::Punct if (t.text == "," || t.text == ";" || t.text == "=") && angle <= 0 => {
                return false
            }
            TokKind::Open => {
                j = sf.skip_group(j);
                continue;
            }
            TokKind::Close => return false,
            _ => {}
        }
        j += 1;
    }
    false
}

/// True when a `let` initializer starting at `start` is (a) a bare alias
/// of a hash name (`[&[mut]] name;`/`name.clone()`), or (b) a lock-guard
/// chain rooted at a hash name (`[&mut *] name.lock().expect(…)`), or (c)
/// a `HashMap::…` / `HashSet::…` constructor call.
fn init_propagates_hash(sf: &SourceFile, start: usize, names: &BTreeSet<String>) -> bool {
    let mut j = start;
    // Strip leading `&`, `mut`, `*` sigils.
    while sf.tok(j).is_some_and(|t| t.is_punct("&") || t.is_punct("*") || t.is_ident("mut")) {
        j += 1;
    }
    // `HashMap::new()` / `HashSet::with_capacity(…)` constructors.
    if sf.tok(j).is_some_and(|t| HASH_TYPES.contains(&t.text.as_str())) {
        return true;
    }
    // A path `a.b.c` rooted anywhere, whose last segment before the first
    // call must be a hash name followed only by lock/guard adapters.
    let mut last_ident: Option<&str> = None;
    while j < sf.toks.len() {
        let t = &sf.toks[j];
        match t.kind {
            TokKind::Ident => {
                if sf.is_call(j) {
                    // First call of the chain: allowed adapters only.
                    let rooted = last_ident.is_some_and(|n| names.contains(n));
                    return rooted
                        && matches!(t.text.as_str(), "lock" | "try_lock")
                        && chain_is_guard_adapters(sf, j);
                }
                last_ident = Some(&t.text);
                j += 1;
            }
            TokKind::Punct if t.text == "." || t.text == ":" => j += 1,
            TokKind::Punct if t.text == ";" => {
                // Bare alias `= name;`
                return last_ident.is_some_and(|n| names.contains(n));
            }
            _ => return false,
        }
    }
    false
}

/// After a `lock`/`try_lock` call, only `expect(…)` / `unwrap()` may
/// follow before the `;` for the binding to still be the guard.
fn chain_is_guard_adapters(sf: &SourceFile, lock_idx: usize) -> bool {
    let mut j = lock_idx + 1;
    loop {
        match sf.tok(j) {
            Some(t) if t.kind == TokKind::Open && t.text == "(" => j = sf.skip_group(j),
            Some(t) if t.is_punct(".") => j += 1,
            Some(t) if t.is_ident("expect") || t.is_ident("unwrap") => j += 1,
            Some(t) if t.is_punct(";") => return true,
            _ => return false,
        }
    }
}

fn scan_file(sf: &SourceFile, hash_names: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < sf.toks.len() {
        if sf.in_test[i] {
            i += 1;
            continue;
        }
        let t = &sf.toks[i];
        if t.kind == TokKind::Ident {
            // Hash iteration via method call.
            if ITER_METHODS.contains(&t.text.as_str()) && sf.is_call(i) {
                if let Some(recv) = sf.receiver_last_ident(i) {
                    if hash_names.contains(recv) {
                        findings.push(Finding::new(
                            sf,
                            Rule::DetHashIter,
                            t.line,
                            t.col,
                            format!(
                                "`.{}()` iterates hash-ordered `{}` — iteration \
                                 order varies per process; use an ordered \
                                 structure (BTreeMap/Vec/LruList) or the \
                                 stable-hash buckets",
                                t.text, recv
                            ),
                        ));
                    }
                }
            }
            // `for x in [&[mut]] name { … }` over a hash collection.
            if t.is_ident("for") {
                if let Some((line, col, name)) = for_loop_over_hash(sf, i, hash_names) {
                    findings.push(Finding::new(
                        sf,
                        Rule::DetHashIter,
                        line,
                        col,
                        format!(
                            "`for … in {name}` iterates a hash-ordered collection — \
                             iteration order varies per process"
                        ),
                    ));
                }
            }
            // Wall-clock types.
            if t.is_ident("SystemTime") || t.is_ident("Instant") {
                findings.push(Finding::new(
                    sf,
                    Rule::DetTime,
                    t.line,
                    t.col,
                    format!(
                        "`{}` in an output-producing crate — wall-clock values \
                         vary per run; timing belongs in bench/service",
                        t.text
                    ),
                ));
            }
            // Thread identity.
            if t.is_ident("ThreadId")
                || (t.is_ident("current")
                    && sf.is_call(i)
                    && i >= 3
                    && sf.toks[i - 1].is_punct(":")
                    && sf.toks[i - 2].is_punct(":")
                    && sf.toks[i - 3].is_ident("thread"))
            {
                findings.push(Finding::new(
                    sf,
                    Rule::DetThreadId,
                    t.line,
                    t.col,
                    "thread identity in an output-producing crate — worker \
                     assignment varies per run"
                        .to_string(),
                ));
            }
            // Pointer-address dependence: `.as_ptr() as …`.
            if (t.is_ident("as_ptr") || t.is_ident("as_mut_ptr")) && sf.is_call(i) {
                let after = sf.skip_group(i + 1);
                if sf.tok(after).is_some_and(|t| t.is_ident("as")) {
                    findings.push(Finding::new(
                        sf,
                        Rule::DetPtr,
                        t.line,
                        t.col,
                        "pointer address cast to an integer — addresses vary \
                         per run (ASLR, allocator state)"
                            .to_string(),
                    ));
                }
            }
            // `… as *const T as usize` style address-identity casts.
            if t.is_ident("as")
                && sf.tok(i + 1).is_some_and(|t| t.is_punct("*"))
                && sf.tok(i + 2).is_some_and(|t| t.is_ident("const") || t.is_ident("mut"))
            {
                findings.push(Finding::new(
                    sf,
                    Rule::DetPtr,
                    t.line,
                    t.col,
                    "raw-pointer cast in an output-producing crate — pointer \
                     values vary per run"
                        .to_string(),
                ));
            }
        }
        i += 1;
    }
}

/// For a `for` keyword at `i`, returns the site when the iterated
/// expression is a plain (possibly `&`/`&mut`-prefixed) path ending in a
/// hash-typed name.  Method-call iterations (`map.keys()`) are caught by
/// the call rule instead.
fn for_loop_over_hash<'a>(
    sf: &'a SourceFile,
    i: usize,
    hash_names: &BTreeSet<String>,
) -> Option<(u32, u32, &'a str)> {
    // Find the `in` keyword at pattern depth 0.
    let mut j = i + 1;
    let mut in_idx = None;
    while j < sf.toks.len() && j < i + 64 {
        let t = &sf.toks[j];
        if t.kind == TokKind::Open {
            j = sf.skip_group(j);
            continue;
        }
        if t.kind == TokKind::Close || t.is_punct(";") {
            return None;
        }
        if t.is_ident("in") {
            in_idx = Some(j);
            break;
        }
        j += 1;
    }
    let mut j = in_idx? + 1;
    // The iterated expression runs to the loop's `{`.
    let mut last_ident: Option<usize> = None;
    while j < sf.toks.len() {
        let t = &sf.toks[j];
        match t.kind {
            TokKind::Open if t.text == "{" => break,
            TokKind::Open => return None, // call or index in the expr — not a plain path
            TokKind::Ident if t.is_ident("mut") => j += 1,
            TokKind::Ident => {
                last_ident = Some(j);
                j += 1;
            }
            TokKind::Punct if t.text == "&" || t.text == "." || t.text == ":" || t.text == "*" => {
                j += 1
            }
            _ => return None,
        }
    }
    let idx = last_ident?;
    let name = sf.toks[idx].text.as_str();
    hash_names.contains(name).then(|| (sf.toks[idx].line, sf.toks[idx].col, name))
}
