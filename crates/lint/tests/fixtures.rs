//! The fixture corpus is the lint's regression suite: every `//~ rule`
//! marker must be hit by exactly one unallowed finding on that line, and
//! the near-miss files (no markers) must stay silent.

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn every_marker_fires_and_nothing_else() {
    let files = lint::fixture_files(repo_root()).expect("fixture corpus readable");
    assert!(files.len() >= 12, "corpus went missing? found {} files", files.len());
    let findings = lint::run_passes(&files);
    let problems = lint::check_fixtures(&files, &findings);
    assert!(problems.is_empty(), "fixture corpus mismatches:\n{}", problems.join("\n"));
}

#[test]
fn corpus_covers_every_pass() {
    let files = lint::fixture_files(repo_root()).expect("fixture corpus readable");
    let markers: Vec<String> =
        files.iter().flat_map(|f| f.markers.iter().map(|(_, r)| r.clone())).collect();
    for rule in [
        "lock-reacquire",
        "lock-held-across-call",
        "lock-order-cycle",
        "det-hash-iter",
        "det-time",
        "det-thread-id",
        "det-ptr",
        "panic-unwrap",
        "panic-expect",
        "panic-macro",
        "panic-index",
        "unsafe-code",
        "missing-forbid",
    ] {
        assert!(markers.iter().any(|m| m == rule), "no fixture seeds rule `{rule}`");
    }
}

#[test]
fn pr5_deadlock_shape_is_caught() {
    // The one regression this lint exists for: a guard temporary born in
    // a Debug builder-chain argument, held across a self-call that locks
    // the same mutex (fixed in the engine once; never again).
    let files = lint::fixture_files(repo_root()).expect("fixture corpus readable");
    let findings = lint::run_passes(&files);
    assert!(
        findings.iter().any(|f| {
            f.rule.code() == "lock-held-across-call"
                && f.path.to_string_lossy().contains("builder_chain")
        }),
        "the PR 5 builder-chain deadlock fixture did not fire"
    );
}
