//! The workspace itself must lint clean: every real finding is either
//! fixed or carries a written `lint: allow` justification.  Running this
//! under `cargo test` makes the lint part of the tier-1 gate even where
//! CI configuration is not in play.

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn workspace_lints_clean() {
    let files = lint::workspace_files(repo_root()).expect("workspace readable");
    assert!(files.len() > 50, "discovery collapsed? found {} files", files.len());
    let findings = lint::run_passes(&files);
    let blocking: Vec<String> =
        findings.iter().filter(|f| f.allowed.is_none()).map(|f| f.to_string()).collect();
    assert!(blocking.is_empty(), "workspace has unjustified findings:\n{}", blocking.join("\n"));
}

#[test]
fn allowlist_stays_bounded() {
    // The allow inventory is reviewed code: if it balloons past this
    // ceiling, sites are being waved through instead of fixed.  Raise the
    // number only in a PR that argues for each new entry.
    let files = lint::workspace_files(repo_root()).expect("workspace readable");
    let findings = lint::run_passes(&files);
    let allowed = findings.iter().filter(|f| f.allowed.is_some()).count();
    assert!(allowed <= 60, "allowlist grew to {allowed} sites — audit before raising the cap");
}
