//~ missing-forbid
// Seeded: perfectly safe code, but the root lacks
// `#![forbid(unsafe_code)]` — the compiler should enforce confinement.
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}
