//~ missing-forbid
// Seeded: an unjustified unsafe block outside vendor/mio_lite, in a root
// that also fails to forbid unsafe code.
fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() } //~ unsafe-code
}
