#![forbid(unsafe_code)]
// Seeded: the vendored SIMD stub (`vendor/wide_lite`) is scanned like any
// other crate — unlike `mio_lite` it gets no unsafe exemption, so a lane
// kernel reaching for a raw intrinsic instead of the autovectorizable
// array form is a finding even under an (unchecked, fixture-only) forbid.
pub fn lanes_min(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
    let _ = (&a, &b);
    unsafe { core::mem::zeroed() } //~ unsafe-code
}
