// Suppression demo: a justified unsafe island.  The file-wide allow
// covers the unsafe tokens, and an allowed unsafe site exempts the root
// from the forbid audit (forbid would reject the justified code).
// lint: allow-file(unsafe-code: fixture demonstrating a justified unsafe island)
fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
