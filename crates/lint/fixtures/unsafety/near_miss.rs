#![forbid(unsafe_code)]
// Near-miss: the forbid attribute is present and nothing here is unsafe
// (mentioning unsafe in comments or "unsafe strings" does not count).
pub fn safe() -> &'static str {
    "unsafe in a string literal is fine"
}
