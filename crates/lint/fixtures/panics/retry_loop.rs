// Seeded: panics inside a client retry loop — the loop exists to absorb
// faults, so a panic here turns a recoverable transport error into a
// stranded batch.  Modeled on the reconnect-and-resend shape of the
// serve client.
fn retry(attempts: u32, schedule: &[u64], outcomes: &mut [Option<u32>]) -> u32 {
    let mut retries = 0;
    loop {
        match attempt(outcomes) {
            Some(value) => {
                // Draining the slots with unwrap defeats the loop's
                // whole purpose: one empty slot panics the client.
                let first = outcomes[0]; //~ panic-index
                return first.unwrap() + value; //~ panic-unwrap
            }
            None if retries < attempts => {
                // Indexing the backoff schedule panics once retries
                // outruns the precomputed delays.
                let delay = schedule[retries as usize]; //~ panic-index
                std::thread::sleep(std::time::Duration::from_millis(delay));
                retries += 1;
            }
            None => {
                let last = outcomes.last().expect("at least one request"); //~ panic-expect
                return last.unwrap_or(0);
            }
        }
    }
}

fn attempt(outcomes: &mut [Option<u32>]) -> Option<u32> {
    for slot in outcomes.iter_mut() {
        if slot.is_none() {
            *slot = Some(1);
            return None;
        }
    }
    Some(0)
}
