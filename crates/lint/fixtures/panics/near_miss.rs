// Near-misses: none of these may fire.
struct Reader {
    pos: usize,
}

impl Reader {
    // A parser method named `expect` taking a *char* — the rule only
    // covers `.expect("…")` with a string-literal argument.
    fn expect(&mut self, want: char) -> Result<(), String> {
        self.pos += 1;
        if want == 'x' {
            Ok(())
        } else {
            Err("nope".to_string())
        }
    }

    fn run(&mut self) -> Result<(), String> {
        self.expect(':')?;
        self.expect('x')
    }
}

// Checked access and full-range reborrows do not panic.
fn safe_access(v: &[u32]) -> u32 {
    let whole = &v[..];
    whole.first().copied().unwrap_or(0) + v.get(1).copied().unwrap_or(0)
}

// Test code may assert and unwrap freely.
#[cfg(test)]
mod tests {
    #[test]
    fn asserts_allowed() {
        let v = Some(3u32);
        assert_eq!(v.unwrap(), 3);
    }
}
