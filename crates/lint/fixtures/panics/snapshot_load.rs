// Seeded: panicking on snapshot-load failures.  A snapshot file is
// untrusted input read at daemon boot — a missing or corrupt file must
// degrade to a cold start with a logged reason, never unwrap/index its
// way into killing the worker before it serves a single request.
fn boot(path: &std::path::Path) -> Vec<u8> {
    let bytes = std::fs::read(path).unwrap(); //~ panic-unwrap
    let version = bytes[8]; //~ panic-index
    assert_eq!(version, 1, "snapshot format"); //~ panic-macro
    bytes
}

fn magic(bytes: &[u8]) -> u8 {
    let head = bytes.get(..8).expect("snapshot too short"); //~ panic-expect
    head[0] //~ panic-index
}
