// Seeded: an unconditional panic macro and unchecked slice indexing in
// the daemon path.
fn pick(v: &[u32], i: usize) -> u32 {
    if i > v.len() {
        panic!("out of range"); //~ panic-macro
    }
    v[i] //~ panic-index
}
