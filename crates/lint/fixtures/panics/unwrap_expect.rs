// Seeded: unwrap/expect in the daemon path — a panic kills the process
// and every in-flight connection.
fn read(v: Option<u32>, r: Result<u32, String>) -> u32 {
    let a = v.unwrap(); //~ panic-unwrap
    let b = r.expect("present"); //~ panic-expect
    a + b
}
