// Suppression demo: the unwrap below is covered by a justified
// `lint: allow` comment, so it must not count as a blocking finding (and
// therefore carries no `//~` marker).
fn startup(v: Option<u32>) -> u32 {
    // lint: allow(panic-unwrap: fixture demonstrating the suppression syntax)
    v.unwrap()
}
