// Seeded: wall-clock, thread-identity and pointer-address dependence in
// an output-producing crate — all three vary run to run.
fn stamp() -> bool {
    let t = std::time::Instant::now(); //~ det-time
    t.elapsed().as_nanos() > 0
}

fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id()) //~ det-thread-id
}

fn bucket_of(v: &[u8]) -> usize {
    (v.as_ptr() as usize) % 8 //~ det-ptr
}
