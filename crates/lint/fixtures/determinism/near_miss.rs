// Near-misses: keyed hash-map access, ordered-structure iteration and
// hash-free drains are all deterministic — none may fire.
use std::collections::{BTreeMap, HashMap};

struct Store {
    map: HashMap<u64, u32>,
    ordered: BTreeMap<u64, u32>,
    list: Vec<u32>,
}

impl Store {
    // Keyed lookups never observe iteration order.
    fn get(&mut self, k: u64) -> Option<u32> {
        self.map.insert(k, 1);
        if self.map.contains_key(&k) {
            self.map.get(&k).copied()
        } else {
            None
        }
    }

    // BTreeMap iterates in key order — deterministic by construction.
    fn ordered_keys(&self) -> Vec<u64> {
        self.ordered.keys().copied().collect()
    }

    // `drain` on a Vec (same method name, non-hash receiver) is ordered.
    fn flush(&mut self) -> Vec<u32> {
        self.list.drain(..).collect()
    }
}
