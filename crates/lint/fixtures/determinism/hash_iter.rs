// Seeded: iterating a hash-ordered collection in an output-producing
// crate — the visit order observes `RandomState`'s per-process seed.
use std::collections::HashMap;

struct Index {
    map: HashMap<u64, u32>,
}

impl Index {
    fn dump(&self) -> Vec<u64> {
        self.map.keys().copied().collect() //~ det-hash-iter
    }

    fn total(&self) -> u32 {
        let mut total = 0;
        for (_k, v) in &self.map { //~ det-hash-iter
            total += v;
        }
        total
    }
}
