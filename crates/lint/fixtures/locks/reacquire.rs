// Seeded: a blocking re-acquisition of the same mutex while the first
// guard (a `let` binding, live to the end of the block) is still held —
// guaranteed same-thread deadlock on `std::sync::Mutex`.
use std::sync::Mutex;

fn double_lock(m: &Mutex<u32>) -> u32 {
    let first = m.lock().unwrap();
    let second = m.lock().unwrap(); //~ lock-reacquire
    *first + *second
}
