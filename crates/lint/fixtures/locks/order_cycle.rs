// Seeded: two functions acquire the same two mutexes in opposite orders
// with *blocking* `lock()` calls — two threads can deadlock against each
// other.  (Contrast with the try_lock shapes in near_miss.rs.)
use std::sync::Mutex;

fn a_then_b(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap(); //~ lock-order-cycle
    *ga + *gb
}

fn b_then_a(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let gb = b.lock().unwrap();
    let ga = a.lock().unwrap();
    *ga + *gb
}
