// Near-misses: every shape here is fine and none may fire.
use std::sync::Mutex;

struct Engine {
    pool: Mutex<Vec<u32>>,
    side: Mutex<u32>,
}

impl Engine {
    // Looks like builder_chain.rs, but the count is resolved *before* the
    // chain (the PR 5 fix): no guard is live across the call.
    fn render(&self) -> String {
        let n = self.pool.lock().unwrap().len();
        format!("{} {}", n, self.clear_count())
    }

    fn clear_count(&self) -> usize {
        self.pool.lock().unwrap().len()
    }

    // `let` binds the *length*, not the guard — the guard is a temporary
    // that dies at the `;`, so the second lock does not overlap it.
    fn sequential(&self) -> usize {
        let first = self.pool.lock().unwrap().len();
        let second = self.pool.lock().unwrap().len();
        first + second
    }

    // A scoped guard dropped before the next acquisition.
    fn scoped(&self) -> u32 {
        {
            let mut g = self.pool.lock().unwrap();
            g.push(1);
        }
        *self.side.lock().unwrap()
    }

    // `clear` on a non-self receiver must never alias `Engine::clear`,
    // which locks the pool.
    fn tidy(&self, buf: &mut Vec<u32>) {
        let g = self.pool.lock().unwrap();
        buf.clear();
        drop(g);
    }

    fn clear(&self) {
        self.pool.lock().unwrap().clear();
    }
}

// Opposite acquisition orders, but each inner acquisition is a
// `try_lock`: a non-blocking probe cannot complete a deadlock cycle —
// the DESIGN.md §6 try_lock discipline.
fn a_then_try_b(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap();
    if let Ok(gb) = b.try_lock() {
        return *ga + *gb;
    }
    *ga
}

fn b_then_try_a(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let gb = b.lock().unwrap();
    if let Ok(ga) = a.try_lock() {
        return *ga + *gb;
    }
    *gb
}
