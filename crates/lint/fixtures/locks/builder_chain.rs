// Seeded: the PR 5 deadlock, distilled.  The guard born inside the first
// `.field(…)` argument is a temporary of the whole builder-chain
// statement, so it is still live when the second argument calls
// `self.context_count()` — which blocks on the same mutex.
use std::sync::Mutex;

struct Engine {
    contexts: Mutex<Vec<u32>>,
}

impl Engine {
    fn context_count(&self) -> usize {
        self.contexts.lock().unwrap().len()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("contexts", &self.contexts.lock().unwrap().len())
            .field("count", &self.context_count()) //~ lock-held-across-call
            .finish()
    }
}
