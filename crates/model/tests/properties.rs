//! Property-based tests of the model invariants.

use chain2l_model::math;
use chain2l_model::pattern::WeightPattern;
use chain2l_model::platform::Platform;
use chain2l_model::schedule::{Action, Schedule};
use chain2l_model::{ResilienceCosts, Scenario, TaskChain};
use proptest::prelude::*;

fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10_000.0, 1..64)
}

fn pattern_strategy() -> impl Strategy<Value = WeightPattern> {
    prop_oneof![
        Just(WeightPattern::Uniform),
        Just(WeightPattern::Decrease),
        Just(WeightPattern::Increase),
        (0.01f64..1.0, 0.0f64..1.0)
            .prop_map(|(t, w)| WeightPattern::HighLow { task_fraction: t, weight_fraction: w }),
    ]
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::None),
        Just(Action::PartialVerification),
        Just(Action::GuaranteedVerification),
        Just(Action::MemoryCheckpoint),
        Just(Action::DiskCheckpoint),
    ]
}

proptest! {
    /// Prefix sums are consistent: `W(i,k) = W(i,j) + W(j,k)` and the total is
    /// the sum of the weights.
    #[test]
    fn interval_weights_are_additive(weights in weights_strategy()) {
        let chain = TaskChain::from_weights(weights.clone()).unwrap();
        let n = chain.len();
        let total: f64 = weights.iter().sum();
        prop_assert!(math::approx_eq(chain.total_weight(), total, 1e-9));
        // A few random split points are enough; use deterministic thirds.
        let i = n / 3;
        let j = 2 * n / 3;
        prop_assert!(math::approx_eq(
            chain.interval_weight(0, n),
            chain.interval_weight(0, i)
                + chain.interval_weight(i, j)
                + chain.interval_weight(j, n),
            1e-9
        ));
    }

    /// Every pattern distributes exactly the requested total weight with
    /// non-negative task weights.
    #[test]
    fn patterns_conserve_weight(
        pattern in pattern_strategy(),
        n in 1usize..80,
        total in 0.0f64..1e6,
    ) {
        let chain = pattern.generate(n, total).unwrap();
        prop_assert_eq!(chain.len(), n);
        prop_assert!(math::approx_eq(chain.total_weight(), total, 1e-6));
        prop_assert!(chain.weights().iter().all(|w| *w >= 0.0));
    }

    /// The Decrease pattern is non-increasing and Increase is non-decreasing.
    #[test]
    fn monotone_patterns_are_monotone(n in 1usize..60, total in 1.0f64..1e6) {
        let dec = WeightPattern::Decrease.generate(n, total).unwrap();
        prop_assert!(dec.weights().windows(2).all(|w| w[0] >= w[1] - 1e-9));
        let inc = WeightPattern::Increase.generate(n, total).unwrap();
        prop_assert!(inc.weights().windows(2).all(|w| w[0] <= w[1] + 1e-9));
    }

    /// Schedule counts are hierarchical and consistent with the positions.
    #[test]
    fn schedule_counts_match_positions(actions in proptest::collection::vec(action_strategy(), 1..80)) {
        let schedule = Schedule::from_actions(actions).unwrap();
        let counts = schedule.counts();
        prop_assert_eq!(counts.disk_checkpoints, schedule.disk_checkpoint_positions().len());
        prop_assert_eq!(counts.memory_checkpoints, schedule.memory_checkpoint_positions().len());
        prop_assert_eq!(
            counts.guaranteed_verifications,
            schedule.guaranteed_verification_positions().len()
        );
        prop_assert_eq!(
            counts.partial_verifications,
            schedule.partial_verification_positions().len()
        );
        prop_assert!(counts.disk_checkpoints <= counts.memory_checkpoints);
        prop_assert!(counts.memory_checkpoints <= counts.guaranteed_verifications);
    }

    /// The compact schedule notation round-trips for every schedule.
    #[test]
    fn compact_notation_round_trips(actions in proptest::collection::vec(action_strategy(), 1..80)) {
        let schedule = Schedule::from_actions(actions).unwrap();
        let compact = schedule.render_compact();
        let parsed = Schedule::parse_compact(&compact).unwrap();
        prop_assert_eq!(parsed, schedule);
    }

    /// `last_*_before` queries agree with the position lists.
    #[test]
    fn last_before_queries_are_consistent(
        actions in proptest::collection::vec(action_strategy(), 1..50),
        probe in 0usize..50,
    ) {
        let schedule = Schedule::from_actions(actions).unwrap();
        let probe = probe.min(schedule.len());
        let expected = schedule
            .memory_checkpoint_positions()
            .into_iter().rfind(|&p| p <= probe)
            .unwrap_or(0);
        prop_assert_eq!(schedule.last_memory_checkpoint_before(probe), expected);
        let expected = schedule
            .disk_checkpoint_positions()
            .into_iter().rfind(|&p| p <= probe)
            .unwrap_or(0);
        prop_assert_eq!(schedule.last_disk_checkpoint_before(probe), expected);
    }

    /// The probabilistic primitives stay within their mathematical bounds for
    /// arbitrary (positive) rates and work amounts.
    #[test]
    fn probability_primitives_are_bounded(
        lambda in 0.0f64..1e-2,
        w in 0.0f64..1e6,
    ) {
        let p = math::prob_at_least_one(lambda, w);
        prop_assert!((0.0..=1.0).contains(&p));
        let t = math::expected_time_lost(lambda, w);
        prop_assert!(t >= 0.0 && t <= w);
        let e = math::exp_m1_over_lambda(lambda, w);
        prop_assert!(e >= w - 1e-9);
    }

    /// Scenario probability helpers are monotone in the interval length.
    #[test]
    fn scenario_probabilities_are_monotone(
        weights in proptest::collection::vec(1.0f64..5_000.0, 2..30),
        lambda_f in 1e-9f64..1e-4,
        lambda_s in 1e-9f64..1e-4,
    ) {
        let chain = TaskChain::from_weights(weights).unwrap();
        let platform = Platform::new("p", 1, lambda_f, lambda_s, 10.0, 1.0).unwrap();
        let costs = ResilienceCosts::paper_defaults(&platform);
        let scenario = Scenario::new(chain, platform, costs).unwrap();
        let n = scenario.task_count();
        let mut prev = 0.0;
        for j in 0..=n {
            let p = scenario.prob_fail_stop(0, j);
            prop_assert!(p >= prev - 1e-15);
            prev = p;
        }
    }
}

proptest! {
    /// A memory checkpoint placed after the last disk checkpoint has no
    /// enclosing disk interval; the two-level model forbids it and
    /// `Schedule::validate` must reject it, wherever it sits and whatever
    /// precedes it.
    #[test]
    fn validate_rejects_unenclosed_memory_checkpoints(
        prefix in proptest::collection::vec(action_strategy(), 0..20),
        tail_len in 0usize..6,
    ) {
        let mut actions = prefix;
        actions.push(Action::MemoryCheckpoint);
        for _ in 0..tail_len {
            actions.push(Action::None);
        }
        // A guaranteed verification satisfies the final-verification rule, so
        // the *only* reason to reject is the orphaned memory checkpoint.
        actions.push(Action::GuaranteedVerification);
        let n = actions.len();
        let chain = TaskChain::uniform(n, 100.0).unwrap();
        let schedule = Schedule::from_actions(actions).unwrap();
        prop_assert!(schedule.validate(&chain).is_err());
    }

    /// Closing the chain with a disk checkpoint encloses every memory
    /// interval, so any action prefix becomes a valid schedule.
    #[test]
    fn validate_accepts_schedules_closed_by_a_terminal_disk_checkpoint(
        actions in proptest::collection::vec(action_strategy(), 1..40),
    ) {
        let mut actions = actions;
        *actions.last_mut().unwrap() = Action::DiskCheckpoint;
        let n = actions.len();
        let chain = TaskChain::uniform(n, 50.0).unwrap();
        let schedule = Schedule::from_actions(actions).unwrap();
        prop_assert!(schedule.validate(&chain).is_ok());
    }

    /// The paper requires the execution to end in a *verified* state: a tail
    /// that is unverified, or closed only by a partial verification (recall
    /// `r < 1` can miss a corruption), is a forbidden verification ordering.
    #[test]
    fn validate_rejects_unverified_or_partially_verified_tails(
        prefix in proptest::collection::vec(action_strategy(), 0..30),
        tail in prop_oneof![Just(Action::None), Just(Action::PartialVerification)],
    ) {
        let mut actions = prefix;
        actions.push(tail);
        let n = actions.len();
        let chain = TaskChain::uniform(n, 100.0).unwrap();
        let schedule = Schedule::from_actions(actions).unwrap();
        prop_assert!(schedule.validate(&chain).is_err());
    }

    /// A schedule is only valid for a chain of exactly its length.
    #[test]
    fn validate_rejects_length_mismatches(n in 1usize..40, m in 1usize..40) {
        prop_assume!(n != m);
        let chain = TaskChain::uniform(n, 100.0).unwrap();
        let schedule = Schedule::terminal_only(m);
        prop_assert!(schedule.validate(&chain).is_err());
    }
}

#[test]
fn schedule_strips_have_exactly_the_chain_length() {
    let mut schedule = Schedule::terminal_only(37);
    schedule.set_action(12, Action::PartialVerification);
    schedule.set_action(20, Action::MemoryCheckpoint);
    let strips = schedule.render_strips("len-check");
    for line in strips.lines().skip(1) {
        let cells = line.chars().filter(|&c| c == 'x' || c == '.').count();
        assert_eq!(cells, 37);
    }
}
