//! Error types for the model crate.

use std::fmt;

/// Errors raised while constructing or validating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A task chain must contain at least one task.
    EmptyChain,
    /// A task weight was negative, NaN or infinite.
    InvalidWeight {
        /// 1-based task index.
        index: usize,
        /// Offending weight.
        weight: f64,
    },
    /// An interval `(start, end]` was empty or out of bounds.
    InvalidInterval {
        /// Left (exclusive) bound.
        start: usize,
        /// Right (inclusive) bound.
        end: usize,
        /// Chain length.
        len: usize,
    },
    /// A cost, rate or recall parameter was out of its admissible domain.
    InvalidParameter {
        /// Human-readable parameter name (e.g. `"lambda_fail_stop"`).
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Description of the admissible domain.
        expected: &'static str,
    },
    /// A schedule violated one of the structural invariants of the paper
    /// (e.g. a memory checkpoint without a guaranteed verification).
    InvalidSchedule {
        /// 0-based position (task boundary) at which the violation occurs;
        /// `usize::MAX` when the violation is global.
        position: usize,
        /// Description of the violated invariant.
        reason: String,
    },
    /// A pattern generator was asked for an impossible configuration.
    InvalidPattern {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyChain => write!(f, "task chain must contain at least one task"),
            ModelError::InvalidWeight { index, weight } => {
                write!(f, "task T{index} has invalid weight {weight} (must be finite and >= 0)")
            }
            ModelError::InvalidInterval { start, end, len } => {
                write!(f, "invalid task interval ({start}, {end}] for a chain of {len} tasks")
            }
            ModelError::InvalidParameter { name, value, expected } => {
                write!(f, "parameter `{name}` = {value} is invalid: expected {expected}")
            }
            ModelError::InvalidSchedule { position, reason } => {
                if *position == usize::MAX {
                    write!(f, "invalid schedule: {reason}")
                } else {
                    write!(f, "invalid schedule at task boundary {position}: {reason}")
                }
            }
            ModelError::InvalidPattern { reason } => write!(f, "invalid weight pattern: {reason}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = ModelError::InvalidWeight { index: 4, weight: -1.0 };
        let msg = e.to_string();
        assert!(msg.contains("T4"));
        assert!(msg.contains("-1"));

        let e = ModelError::InvalidParameter { name: "recall", value: 1.5, expected: "0 < r <= 1" };
        assert!(e.to_string().contains("recall"));

        let e = ModelError::InvalidSchedule { position: usize::MAX, reason: "global".into() };
        assert!(!e.to_string().contains("boundary"));
        let e = ModelError::InvalidSchedule { position: 3, reason: "local".into() };
        assert!(e.to_string().contains("boundary 3"));
    }

    #[test]
    fn error_trait_object_is_usable() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::EmptyChain);
        assert!(e.to_string().contains("at least one task"));
    }
}
