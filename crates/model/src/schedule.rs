//! Schedules: where checkpoints and verifications are placed.
//!
//! A [`Schedule`] assigns one [`Action`] to every task boundary of a chain of
//! `n` tasks.  Boundary `i` (for `i ∈ 1..=n`) sits right after task `Ti`;
//! boundary `0` is the virtual task `T0`, which is always disk- and
//! memory-checkpointed at zero cost and is therefore not stored explicitly.
//!
//! The model of the paper imposes a strict hierarchy on the resilience
//! actions that can be taken at a boundary:
//!
//! * a **disk checkpoint** is always immediately preceded by a memory
//!   checkpoint;
//! * a **memory checkpoint** is always immediately preceded by a guaranteed
//!   verification (so corrupted data is never checkpointed);
//! * a **partial verification** is only ever placed where no guaranteed
//!   verification is taken (it would be redundant otherwise).
//!
//! [`Action`] encodes this hierarchy directly: each variant *implies* all the
//! cheaper mechanisms below it, so illegal combinations are unrepresentable.

use crate::chain::TaskChain;
use crate::cost::ResilienceCosts;
use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The resilience action taken at one task boundary.
///
/// Variants are ordered from "nothing" to "heaviest"; `Ord` follows that
/// hierarchy so `action >= Action::MemoryCheckpoint` reads naturally.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Action {
    /// No resilience action: execution continues straight into the next task.
    #[default]
    None,
    /// A partial verification (cost `V`, recall `r < 1`).
    PartialVerification,
    /// A guaranteed verification (cost `V*`, recall 1).
    GuaranteedVerification,
    /// A guaranteed verification followed by a memory checkpoint (`V* + C_M`).
    MemoryCheckpoint,
    /// A guaranteed verification, a memory checkpoint and a disk checkpoint
    /// (`V* + C_M + C_D`).
    DiskCheckpoint,
}

impl Action {
    /// Does this action include a verification of any kind?
    pub fn has_any_verification(self) -> bool {
        self != Action::None
    }

    /// Does this action include a *partial* verification?
    pub fn has_partial_verification(self) -> bool {
        self == Action::PartialVerification
    }

    /// Does this action include a *guaranteed* verification?
    pub fn has_guaranteed_verification(self) -> bool {
        self >= Action::GuaranteedVerification
    }

    /// Does this action include a memory checkpoint?
    pub fn has_memory_checkpoint(self) -> bool {
        self >= Action::MemoryCheckpoint
    }

    /// Does this action include a disk checkpoint?
    pub fn has_disk_checkpoint(self) -> bool {
        self == Action::DiskCheckpoint
    }

    /// Total cost of performing this action (verification + checkpoints), in
    /// seconds, under the given cost model.
    pub fn cost(self, costs: &ResilienceCosts) -> f64 {
        match self {
            Action::None => 0.0,
            Action::PartialVerification => costs.partial_verification,
            Action::GuaranteedVerification => costs.guaranteed_verification,
            Action::MemoryCheckpoint => costs.guaranteed_verification + costs.memory_checkpoint,
            Action::DiskCheckpoint => {
                costs.guaranteed_verification + costs.memory_checkpoint + costs.disk_checkpoint
            }
        }
    }

    /// One-character symbol used by the ASCII strip rendering:
    /// `.` none, `p` partial, `v` guaranteed, `M` memory, `D` disk.
    pub fn symbol(self) -> char {
        match self {
            Action::None => '.',
            Action::PartialVerification => 'p',
            Action::GuaranteedVerification => 'v',
            Action::MemoryCheckpoint => 'M',
            Action::DiskCheckpoint => 'D',
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Action::None => "none",
            Action::PartialVerification => "partial-verification",
            Action::GuaranteedVerification => "guaranteed-verification",
            Action::MemoryCheckpoint => "memory-checkpoint",
            Action::DiskCheckpoint => "disk-checkpoint",
        };
        f.write_str(s)
    }
}

/// Hierarchical counts of the resilience actions placed by a schedule.
///
/// The counting convention follows the figures of the paper: a heavier action
/// also counts as all the lighter mechanisms it includes, e.g. every disk
/// checkpoint contributes to `memory_checkpoints` and to
/// `guaranteed_verifications` as well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActionCounts {
    /// Number of boundaries with a disk checkpoint.
    pub disk_checkpoints: usize,
    /// Number of boundaries with a memory checkpoint (includes disk-checkpointed ones).
    pub memory_checkpoints: usize,
    /// Number of boundaries with a guaranteed verification (includes checkpointed ones).
    pub guaranteed_verifications: usize,
    /// Number of boundaries with a partial verification.
    pub partial_verifications: usize,
}

impl ActionCounts {
    /// Total number of boundaries that carry any action at all.
    pub fn active_boundaries(&self) -> usize {
        self.guaranteed_verifications + self.partial_verifications
    }
}

/// A complete placement of resilience actions over a chain of `n` tasks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// `actions[i - 1]` is the action taken right after task `Ti`.
    actions: Vec<Action>,
}

impl Schedule {
    /// Creates a schedule for `n` tasks with no action anywhere except a final
    /// disk checkpoint after `Tn` (the convention used by the optimizers: the
    /// application always ends with a verified, fully checkpointed state).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn terminal_only(n: usize) -> Self {
        assert!(n > 0, "a schedule needs at least one task");
        let mut actions = vec![Action::None; n];
        actions[n - 1] = Action::DiskCheckpoint;
        Self { actions }
    }

    /// Creates a schedule with *no* action at all (not even a final
    /// verification).  Such a schedule is not accepted by the analytical
    /// evaluator but is useful as a neutral starting point for builders.
    pub fn empty(n: usize) -> Self {
        assert!(n > 0, "a schedule needs at least one task");
        Self { actions: vec![Action::None; n] }
    }

    /// Creates a schedule from an explicit action list (`actions[i-1]` = action
    /// after `Ti`).
    pub fn from_actions(actions: Vec<Action>) -> Result<Self, ModelError> {
        if actions.is_empty() {
            return Err(ModelError::EmptyChain);
        }
        Ok(Self { actions })
    }

    /// Creates a schedule that performs `action` after every task.
    pub fn every_task(n: usize, action: Action) -> Self {
        assert!(n > 0, "a schedule needs at least one task");
        Self { actions: vec![action; n] }
    }

    /// Creates a schedule that performs `action` after every `period`-th task
    /// (boundaries `period, 2·period, …`) and a disk checkpoint after the last
    /// task.
    ///
    /// # Panics
    /// Panics if `n == 0` or `period == 0`.
    pub fn periodic(n: usize, period: usize, action: Action) -> Self {
        assert!(n > 0, "a schedule needs at least one task");
        assert!(period > 0, "period must be at least 1");
        let mut actions = vec![Action::None; n];
        let mut i = period;
        while i <= n {
            actions[i - 1] = action;
            i += period;
        }
        actions[n - 1] = Action::DiskCheckpoint;
        Self { actions }
    }

    /// Number of tasks `n`.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Always `false` for a constructed schedule; provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Action at boundary `i` (1-based, `i ∈ 1..=n`).  Boundary `0` (the
    /// virtual task `T0`) is implicitly [`Action::DiskCheckpoint`].
    pub fn action(&self, i: usize) -> Action {
        if i == 0 {
            return Action::DiskCheckpoint;
        }
        assert!(i <= self.len(), "boundary {i} out of range 0..={}", self.len());
        self.actions[i - 1]
    }

    /// Sets the action at boundary `i` (1-based).
    pub fn set_action(&mut self, i: usize, action: Action) {
        assert!(i >= 1 && i <= self.len(), "boundary {i} out of range 1..={}", self.len());
        self.actions[i - 1] = action;
    }

    /// Raw action slice (`[i-1]` = boundary `i`).
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Boundaries (1-based, ascending) whose action includes a disk checkpoint.
    pub fn disk_checkpoint_positions(&self) -> Vec<usize> {
        self.positions(|a| a.has_disk_checkpoint())
    }

    /// Boundaries whose action includes a memory checkpoint (disk checkpoints included).
    pub fn memory_checkpoint_positions(&self) -> Vec<usize> {
        self.positions(|a| a.has_memory_checkpoint())
    }

    /// Boundaries whose action includes a guaranteed verification
    /// (memory/disk checkpoints included).
    pub fn guaranteed_verification_positions(&self) -> Vec<usize> {
        self.positions(|a| a.has_guaranteed_verification())
    }

    /// Boundaries carrying a partial verification.
    pub fn partial_verification_positions(&self) -> Vec<usize> {
        self.positions(|a| a.has_partial_verification())
    }

    fn positions(&self, pred: impl Fn(Action) -> bool) -> Vec<usize> {
        self.actions.iter().enumerate().filter(|(_, &a)| pred(a)).map(|(i, _)| i + 1).collect()
    }

    /// Hierarchical action counts (see [`ActionCounts`]).
    pub fn counts(&self) -> ActionCounts {
        let mut c = ActionCounts::default();
        for &a in &self.actions {
            if a.has_disk_checkpoint() {
                c.disk_checkpoints += 1;
            }
            if a.has_memory_checkpoint() {
                c.memory_checkpoints += 1;
            }
            if a.has_guaranteed_verification() {
                c.guaranteed_verifications += 1;
            }
            if a.has_partial_verification() {
                c.partial_verifications += 1;
            }
        }
        c
    }

    /// Counts excluding the final boundary.  The paper's figures describe
    /// "additional" resilience actions placed inside the chain; the mandatory
    /// verified checkpoint that closes the application is excluded there.
    pub fn interior_counts(&self) -> ActionCounts {
        if self.len() == 1 {
            return ActionCounts::default();
        }
        Self { actions: self.actions[..self.len() - 1].to_vec() }.counts()
    }

    /// Sum of all action costs (seconds) under `costs` — the failure-free
    /// resilience overhead of the schedule.
    pub fn total_action_cost(&self, costs: &ResilienceCosts) -> f64 {
        self.actions.iter().map(|a| a.cost(costs)).sum()
    }

    /// Validates the structural invariants required by the analytical
    /// evaluator and the simulator:
    ///
    /// * the schedule length matches the chain length;
    /// * the final boundary carries at least a guaranteed verification, so the
    ///   output of the application is known to be correct when it terminates;
    /// * every memory checkpoint is enclosed by a disk checkpoint at or after
    ///   its boundary (the §II structure: memory intervals close inside disk
    ///   intervals, so a fail-stop rollback never discards a memory
    ///   checkpoint's protected work).
    ///
    /// (The per-boundary verification/checkpoint hierarchy is enforced by
    /// construction via the [`Action`] enum; the rules above are the
    /// cross-boundary invariants it cannot encode.)
    pub fn validate(&self, chain: &TaskChain) -> Result<(), ModelError> {
        if self.len() != chain.len() {
            return Err(ModelError::InvalidSchedule {
                position: usize::MAX,
                reason: format!(
                    "schedule covers {} tasks but the chain has {}",
                    self.len(),
                    chain.len()
                ),
            });
        }
        let last = self.actions[self.len() - 1];
        if !last.has_guaranteed_verification() {
            return Err(ModelError::InvalidSchedule {
                position: self.len(),
                reason: "the final task must be followed by a guaranteed verification so that \
                         the application result is known to be correct"
                    .into(),
            });
        }
        // §II structure: disk checkpoints partition the chain and every
        // memory checkpoint belongs to the disk interval that closes it.  A
        // memory checkpoint placed after the last disk checkpoint has no
        // enclosing disk interval: a fail-stop error in the tail would roll
        // back past it, silently discarding the work it claims to protect.
        let last_disk = (1..=self.len())
            .rev()
            .find(|&i| self.actions[i - 1].has_disk_checkpoint())
            .unwrap_or(0);
        if let Some(orphan) =
            (last_disk + 1..=self.len()).find(|&i| self.actions[i - 1].has_memory_checkpoint())
        {
            return Err(ModelError::InvalidSchedule {
                position: orphan,
                reason: format!(
                    "memory checkpoint at boundary {orphan} is not enclosed by a disk \
                     checkpoint (last disk checkpoint is at boundary {last_disk}); the \
                     two-level model requires every memory interval to close inside a \
                     disk interval"
                ),
            });
        }
        Ok(())
    }

    /// Index of the last boundary `<= i` whose action includes a disk
    /// checkpoint; `0` (the virtual task) when there is none.
    pub fn last_disk_checkpoint_before(&self, i: usize) -> usize {
        self.last_before(i, |a| a.has_disk_checkpoint())
    }

    /// Index of the last boundary `<= i` whose action includes a memory
    /// checkpoint; `0` when there is none.
    pub fn last_memory_checkpoint_before(&self, i: usize) -> usize {
        self.last_before(i, |a| a.has_memory_checkpoint())
    }

    /// Index of the last boundary `<= i` with a guaranteed verification; `0`
    /// when there is none.
    pub fn last_guaranteed_verification_before(&self, i: usize) -> usize {
        self.last_before(i, |a| a.has_guaranteed_verification())
    }

    fn last_before(&self, i: usize, pred: impl Fn(Action) -> bool) -> usize {
        assert!(i <= self.len(), "boundary {i} out of range 0..={}", self.len());
        (1..=i).rev().find(|&j| pred(self.actions[j - 1])).unwrap_or(0)
    }

    /// Renders the schedule as four ASCII strips (disk checkpoints, memory
    /// checkpoints, guaranteed verifications, partial verifications), one
    /// character per task boundary — the textual analogue of Figure 6 of the
    /// paper.  The virtual boundary `T0` is shown as a leading `|`.
    pub fn render_strips(&self, title: &str) -> String {
        let n = self.len();
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        type StripRow = (&'static str, fn(Action) -> bool);
        let rows: [StripRow; 4] = [
            ("Disk ckpts       ", Action::has_disk_checkpoint),
            ("Memory ckpts     ", Action::has_memory_checkpoint),
            ("Guaranteed verifs", Action::has_guaranteed_verification),
            ("Partial verifs   ", Action::has_partial_verification),
        ];
        for (label, pred) in rows.iter() {
            out.push_str(label);
            out.push_str(" |");
            for i in 1..=n {
                out.push(if pred(self.actions[i - 1]) { 'x' } else { '.' });
            }
            out.push('|');
            out.push('\n');
        }
        out
    }

    /// Compact single-line rendering using [`Action::symbol`], e.g.
    /// `|....v....M....D|`.
    pub fn render_compact(&self) -> String {
        let mut s = String::with_capacity(self.len() + 2);
        s.push('|');
        for &a in &self.actions {
            s.push(a.symbol());
        }
        s.push('|');
        s
    }

    /// Parses the compact notation produced by [`Schedule::render_compact`]
    /// (and accepted by the CLI): one character per task boundary —
    /// `.` none, `p` partial verification, `v` guaranteed verification,
    /// `M`/`m` memory checkpoint, `D`/`d` disk checkpoint.  Pipes and spaces
    /// are ignored, so `"|..M..D|"` and `".. M .. D"` both parse.
    ///
    /// # Errors
    /// Returns [`ModelError::InvalidSchedule`] on unknown characters and
    /// [`ModelError::EmptyChain`] when no boundary character is present.
    pub fn parse_compact(spec: &str) -> Result<Self, ModelError> {
        let mut actions = Vec::new();
        for (i, c) in spec.chars().enumerate() {
            let action = match c {
                '.' => Action::None,
                'p' | 'P' => Action::PartialVerification,
                'v' | 'V' => Action::GuaranteedVerification,
                'M' | 'm' => Action::MemoryCheckpoint,
                'D' | 'd' => Action::DiskCheckpoint,
                '|' | ' ' => continue,
                other => {
                    return Err(ModelError::InvalidSchedule {
                        position: i,
                        reason: format!(
                            "unknown schedule character `{other}` (expected . p v M D)"
                        ),
                    })
                }
            };
            actions.push(action);
        }
        Schedule::from_actions(actions)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ResilienceCosts;
    use crate::platform::scr;

    fn hera_costs() -> ResilienceCosts {
        ResilienceCosts::paper_defaults(&scr::hera())
    }

    #[test]
    fn action_hierarchy_predicates() {
        assert!(!Action::None.has_any_verification());
        assert!(Action::PartialVerification.has_partial_verification());
        assert!(!Action::PartialVerification.has_guaranteed_verification());
        assert!(Action::GuaranteedVerification.has_guaranteed_verification());
        assert!(!Action::GuaranteedVerification.has_memory_checkpoint());
        assert!(Action::MemoryCheckpoint.has_guaranteed_verification());
        assert!(Action::MemoryCheckpoint.has_memory_checkpoint());
        assert!(!Action::MemoryCheckpoint.has_disk_checkpoint());
        assert!(Action::DiskCheckpoint.has_disk_checkpoint());
        assert!(Action::DiskCheckpoint.has_memory_checkpoint());
        assert!(Action::DiskCheckpoint.has_guaranteed_verification());
        assert!(!Action::DiskCheckpoint.has_partial_verification());
    }

    #[test]
    fn action_ordering_matches_hierarchy() {
        assert!(Action::None < Action::PartialVerification);
        assert!(Action::PartialVerification < Action::GuaranteedVerification);
        assert!(Action::GuaranteedVerification < Action::MemoryCheckpoint);
        assert!(Action::MemoryCheckpoint < Action::DiskCheckpoint);
    }

    #[test]
    fn action_costs_accumulate_hierarchically() {
        let c = hera_costs();
        assert_eq!(Action::None.cost(&c), 0.0);
        assert!((Action::PartialVerification.cost(&c) - 0.154).abs() < 1e-12);
        assert_eq!(Action::GuaranteedVerification.cost(&c), 15.4);
        assert_eq!(Action::MemoryCheckpoint.cost(&c), 15.4 + 15.4);
        assert_eq!(Action::DiskCheckpoint.cost(&c), 15.4 + 15.4 + 300.0);
    }

    #[test]
    fn terminal_only_has_single_disk_checkpoint_at_the_end() {
        let s = Schedule::terminal_only(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s.disk_checkpoint_positions(), vec![10]);
        assert_eq!(s.memory_checkpoint_positions(), vec![10]);
        assert_eq!(s.guaranteed_verification_positions(), vec![10]);
        assert!(s.partial_verification_positions().is_empty());
    }

    #[test]
    fn boundary_zero_is_virtual_disk_checkpoint() {
        let s = Schedule::terminal_only(3);
        assert_eq!(s.action(0), Action::DiskCheckpoint);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn action_out_of_range_panics() {
        let s = Schedule::terminal_only(3);
        let _ = s.action(4);
    }

    #[test]
    fn periodic_places_actions_every_period() {
        let s = Schedule::periodic(10, 3, Action::MemoryCheckpoint);
        assert_eq!(s.memory_checkpoint_positions(), vec![3, 6, 9, 10]);
        assert_eq!(s.disk_checkpoint_positions(), vec![10]);
    }

    #[test]
    fn periodic_with_period_larger_than_n() {
        let s = Schedule::periodic(5, 100, Action::MemoryCheckpoint);
        assert_eq!(s.disk_checkpoint_positions(), vec![5]);
        assert_eq!(s.memory_checkpoint_positions(), vec![5]);
    }

    #[test]
    fn every_task_schedule() {
        let s = Schedule::every_task(4, Action::GuaranteedVerification);
        assert_eq!(s.guaranteed_verification_positions(), vec![1, 2, 3, 4]);
        assert!(s.disk_checkpoint_positions().is_empty());
    }

    #[test]
    fn counts_are_hierarchical() {
        let s = Schedule::from_actions(vec![
            Action::PartialVerification,
            Action::GuaranteedVerification,
            Action::MemoryCheckpoint,
            Action::None,
            Action::DiskCheckpoint,
        ])
        .unwrap();
        let c = s.counts();
        assert_eq!(c.disk_checkpoints, 1);
        assert_eq!(c.memory_checkpoints, 2);
        assert_eq!(c.guaranteed_verifications, 3);
        assert_eq!(c.partial_verifications, 1);
        assert_eq!(c.active_boundaries(), 4);
    }

    #[test]
    fn interior_counts_drop_the_final_boundary() {
        let s = Schedule::terminal_only(5);
        assert_eq!(s.counts().disk_checkpoints, 1);
        assert_eq!(s.interior_counts().disk_checkpoints, 0);
        let single = Schedule::terminal_only(1);
        assert_eq!(single.interior_counts(), ActionCounts::default());
    }

    #[test]
    fn total_action_cost_sums_all_boundaries() {
        let c = hera_costs();
        let s =
            Schedule::from_actions(vec![Action::GuaranteedVerification, Action::DiskCheckpoint])
                .unwrap();
        let expected = 15.4 + (15.4 + 15.4 + 300.0);
        assert!((s.total_action_cost(&c) - expected).abs() < 1e-9);
    }

    #[test]
    fn validate_checks_length_and_final_verification() {
        let chain = TaskChain::uniform(4, 100.0).unwrap();
        let good = Schedule::terminal_only(4);
        good.validate(&chain).unwrap();

        let wrong_len = Schedule::terminal_only(3);
        assert!(wrong_len.validate(&chain).is_err());

        let mut no_final_verif = Schedule::empty(4);
        no_final_verif.set_action(2, Action::MemoryCheckpoint);
        assert!(no_final_verif.validate(&chain).is_err());

        let mut final_verif_only = Schedule::empty(4);
        final_verif_only.set_action(4, Action::GuaranteedVerification);
        final_verif_only.validate(&chain).unwrap();

        let mut final_partial = Schedule::empty(4);
        final_partial.set_action(4, Action::PartialVerification);
        assert!(final_partial.validate(&chain).is_err());
    }

    #[test]
    fn last_before_queries() {
        let mut s = Schedule::empty(8);
        s.set_action(2, Action::MemoryCheckpoint);
        s.set_action(4, Action::GuaranteedVerification);
        s.set_action(6, Action::DiskCheckpoint);
        s.set_action(8, Action::DiskCheckpoint);

        assert_eq!(s.last_disk_checkpoint_before(5), 0);
        assert_eq!(s.last_disk_checkpoint_before(6), 6);
        assert_eq!(s.last_disk_checkpoint_before(8), 8);
        assert_eq!(s.last_memory_checkpoint_before(5), 2);
        assert_eq!(s.last_memory_checkpoint_before(1), 0);
        assert_eq!(s.last_guaranteed_verification_before(5), 4);
        assert_eq!(s.last_guaranteed_verification_before(3), 2);
        assert_eq!(s.last_guaranteed_verification_before(7), 6);
    }

    #[test]
    fn render_compact_uses_symbols() {
        let s = Schedule::from_actions(vec![
            Action::None,
            Action::PartialVerification,
            Action::GuaranteedVerification,
            Action::MemoryCheckpoint,
            Action::DiskCheckpoint,
        ])
        .unwrap();
        assert_eq!(s.render_compact(), "|.pvMD|");
        assert_eq!(format!("{s}"), "|.pvMD|");
    }

    #[test]
    fn render_strips_has_four_rows_of_n_cells() {
        let s = Schedule::periodic(10, 2, Action::MemoryCheckpoint);
        let strips = s.render_strips("test");
        let lines: Vec<&str> = strips.lines().collect();
        assert_eq!(lines.len(), 5); // title + 4 rows
        assert_eq!(lines[0], "test");
        for line in &lines[1..] {
            let cells = line.chars().filter(|&c| c == 'x' || c == '.').count();
            assert_eq!(cells, 10, "line {line:?}");
        }
        // Memory row has an x at positions 2,4,6,8,10.
        assert!(lines[2].matches('x').count() == 5);
        // Partial row is empty.
        assert!(lines[4].matches('x').count() == 0);
    }

    #[test]
    fn from_actions_rejects_empty() {
        assert!(Schedule::from_actions(vec![]).is_err());
    }

    #[test]
    fn parse_compact_round_trips_render_compact() {
        for spec in ["|.pvMD|", "|..........D|", "|MMMMM|", "|pppppppv|"] {
            let schedule = Schedule::parse_compact(spec).unwrap();
            assert_eq!(schedule.render_compact(), spec);
        }
    }

    #[test]
    fn parse_compact_ignores_decorations_and_accepts_lowercase() {
        let a = Schedule::parse_compact("..m..d").unwrap();
        let b = Schedule::parse_compact("| .. M .. D |").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.action(3), Action::MemoryCheckpoint);
        assert_eq!(a.action(6), Action::DiskCheckpoint);
    }

    #[test]
    fn parse_compact_rejects_unknown_characters_and_empty_input() {
        match Schedule::parse_compact("..X") {
            Err(ModelError::InvalidSchedule { position, .. }) => assert_eq!(position, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(Schedule::parse_compact("| |"), Err(ModelError::EmptyChain)));
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut s = Schedule::empty(3);
        s.set_action(2, Action::PartialVerification);
        assert_eq!(s.action(2), Action::PartialVerification);
        assert_eq!(s.action(1), Action::None);
        assert_eq!(s.actions(), &[Action::None, Action::PartialVerification, Action::None]);
    }
}
