//! A [`Scenario`] bundles everything that defines one optimization problem:
//! the task chain, the platform error rates and the resilience cost model.
//!
//! It also exposes the elementary probabilistic quantities of Section II of
//! the paper as convenience methods (`p^f_{i,j}`, `p^s_{i,j}`, `T^lost_{i,j}`),
//! so the optimizer, evaluator and simulator all consume the same numerically
//! stable implementations from [`crate::math`].

use crate::chain::TaskChain;
use crate::cost::ResilienceCosts;
use crate::error::ModelError;
use crate::math;
use crate::pattern::WeightPattern;
use crate::platform::Platform;
use serde::{Deserialize, Serialize};

/// One complete problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The linear task chain to protect.
    pub chain: TaskChain,
    /// Platform error rates (and raw checkpoint costs).
    pub platform: Platform,
    /// Full resilience cost model (checkpoints, recoveries, verifications, recall).
    pub costs: ResilienceCosts,
}

impl Scenario {
    /// Builds and validates a scenario.
    pub fn new(
        chain: TaskChain,
        platform: Platform,
        costs: ResilienceCosts,
    ) -> Result<Self, ModelError> {
        costs.validate()?;
        Ok(Self { chain, platform, costs })
    }

    /// Builds the paper's §IV setup for a given platform: `n` tasks following
    /// `pattern`, total weight `total_weight` seconds, and the default cost
    /// model (`R = C`, `V* = C_M`, `V = V*/100`, `r = 0.8`).
    pub fn paper_setup(
        platform: &Platform,
        pattern: &WeightPattern,
        n: usize,
        total_weight: f64,
    ) -> Result<Self, ModelError> {
        let chain = pattern.generate(n, total_weight)?;
        let costs = ResilienceCosts::paper_defaults(platform);
        Scenario::new(chain, platform.clone(), costs)
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.chain.len()
    }

    /// `W_{i,j}`: work (seconds) of tasks `T_{i+1}..T_j`.
    pub fn work(&self, i: usize, j: usize) -> f64 {
        self.chain.interval_weight(i, j)
    }

    /// `p^f_{i,j} = 1 − e^{−λ_f W_{i,j}}`: probability of at least one
    /// fail-stop error while executing tasks `T_{i+1}..T_j`.
    pub fn prob_fail_stop(&self, i: usize, j: usize) -> f64 {
        math::prob_at_least_one(self.platform.lambda_fail_stop, self.work(i, j))
    }

    /// `p^s_{i,j} = 1 − e^{−λ_s W_{i,j}}`: probability of at least one silent
    /// error while executing tasks `T_{i+1}..T_j`.
    pub fn prob_silent(&self, i: usize, j: usize) -> f64 {
        math::prob_at_least_one(self.platform.lambda_silent, self.work(i, j))
    }

    /// `T^lost_{i,j}` (Eq. 3): expected time lost when a fail-stop error
    /// strikes while executing tasks `T_{i+1}..T_j`.
    pub fn expected_time_lost(&self, i: usize, j: usize) -> f64 {
        math::expected_time_lost(self.platform.lambda_fail_stop, self.work(i, j))
    }

    /// The error-free, resilience-free execution time of the whole chain
    /// (the normalisation baseline used by the paper's figures).
    pub fn error_free_time(&self) -> f64 {
        self.chain.total_weight()
    }

    /// Disk recovery cost to use when the last disk checkpoint is at boundary
    /// `d` — zero for the virtual task `T0` (restart from scratch is free).
    pub fn disk_recovery_cost(&self, d: usize) -> f64 {
        if d == 0 {
            0.0
        } else {
            self.costs.disk_recovery
        }
    }

    /// Memory recovery cost to use when the last memory checkpoint is at
    /// boundary `m` — zero for the virtual task `T0`.
    pub fn memory_recovery_cost(&self, m: usize) -> f64 {
        if m == 0 {
            0.0
        } else {
            self.costs.memory_recovery
        }
    }

    /// Combined error rate `λ_f + λ_s`, used by the §III-B re-execution factor.
    pub fn combined_rate(&self) -> f64 {
        self.platform.lambda_fail_stop + self.platform.lambda_silent
    }

    /// Returns a copy of the scenario with a different chain (same platform
    /// and cost model).
    pub fn with_chain(&self, chain: TaskChain) -> Self {
        Self { chain, platform: self.platform.clone(), costs: self.costs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::approx_eq;
    use crate::platform::scr;

    fn hera_uniform(n: usize) -> Scenario {
        Scenario::paper_setup(&scr::hera(), &WeightPattern::Uniform, n, 25_000.0).unwrap()
    }

    #[test]
    fn paper_setup_wires_everything_together() {
        let s = hera_uniform(50);
        assert_eq!(s.task_count(), 50);
        assert!(approx_eq(s.error_free_time(), 25_000.0, 1e-9));
        assert_eq!(s.costs.disk_checkpoint, 300.0);
        assert_eq!(s.platform.name, "Hera");
    }

    #[test]
    fn probability_of_error_on_single_task_matches_paper_order_of_magnitude() {
        // Paper §IV (HighLow discussion): on Hera a 3000 s task fails with
        // probability ≈ 1.3 % (fail-stop + silent combined ≈ λ_f+λ_s times W),
        // a 222 s task with ≈ 0.096 %.
        let s = hera_uniform(50);
        let p_large = 1.0
            - (1.0 - math::prob_at_least_one(s.platform.lambda_fail_stop, 3000.0))
                * (1.0 - math::prob_at_least_one(s.platform.lambda_silent, 3000.0));
        assert!((p_large - 0.013).abs() < 0.001, "p_large = {p_large}");
        let p_small = 1.0
            - (1.0 - math::prob_at_least_one(s.platform.lambda_fail_stop, 222.0))
                * (1.0 - math::prob_at_least_one(s.platform.lambda_silent, 222.0));
        assert!((p_small - 0.00096).abs() < 0.0001, "p_small = {p_small}");
    }

    #[test]
    fn work_and_probabilities_are_consistent() {
        let s = hera_uniform(10);
        assert!(approx_eq(s.work(0, 10), 25_000.0, 1e-9));
        assert!(approx_eq(s.work(3, 3), 0.0, 1e-12));
        assert_eq!(s.prob_fail_stop(3, 3), 0.0);
        assert_eq!(s.prob_silent(3, 3), 0.0);
        // p over the whole chain: 1 - exp(-λ · 25000).
        let expect = 1.0 - (-9.46e-7 * 25_000.0f64).exp();
        assert!(approx_eq(s.prob_fail_stop(0, 10), expect, 1e-12));
    }

    #[test]
    fn expected_time_lost_is_about_half_the_interval() {
        let s = hera_uniform(50);
        // Paper §IV: a 3000 s task loses ≈ 1500 s on average to a fail-stop error.
        let chain = WeightPattern::high_low_default().generate(50, 25_000.0).unwrap();
        let s = s.with_chain(chain);
        let t = s.expected_time_lost(0, 1);
        assert!((t - 1500.0).abs() < 2.0, "T_lost = {t}");
    }

    #[test]
    fn recovery_costs_are_zero_at_the_virtual_task() {
        let s = hera_uniform(5);
        assert_eq!(s.disk_recovery_cost(0), 0.0);
        assert_eq!(s.memory_recovery_cost(0), 0.0);
        assert_eq!(s.disk_recovery_cost(3), 300.0);
        assert_eq!(s.memory_recovery_cost(3), 15.4);
    }

    #[test]
    fn combined_rate_is_sum_of_rates() {
        let s = hera_uniform(5);
        assert!(approx_eq(s.combined_rate(), 9.46e-7 + 3.38e-6, 1e-18));
    }

    #[test]
    fn new_rejects_invalid_costs() {
        let chain = TaskChain::uniform(3, 100.0).unwrap();
        let platform = scr::hera();
        let mut costs = ResilienceCosts::paper_defaults(&platform);
        costs.partial_recall = 0.0;
        assert!(Scenario::new(chain, platform, costs).is_err());
    }

    #[test]
    fn with_chain_preserves_platform_and_costs() {
        let s = hera_uniform(5);
        let new_chain = TaskChain::uniform(3, 900.0).unwrap();
        let s2 = s.with_chain(new_chain);
        assert_eq!(s2.task_count(), 3);
        assert_eq!(s2.platform, s.platform);
        assert_eq!(s2.costs, s.costs);
    }
}
