//! Task-weight patterns.
//!
//! Section IV of the paper distributes a total computational weight
//! `W = 25 000 s` over up to `n = 50` tasks using three patterns:
//!
//! 1. **Uniform** — every task has weight `W/n` (matrix products, stencils);
//! 2. **Decrease** — task `Ti` has weight `α (n + 1 − i)²` with
//!    `α ≈ 3W/n³` (dense factorizations such as LU/QR);
//! 3. **HighLow** — a fraction of large tasks at the head of the chain holds a
//!    fraction of the total weight (the paper uses 10 % of the tasks holding
//!    60 % of the weight).
//!
//! This module also provides a few extra generators (random, increasing,
//! explicit) that are useful for property tests and ablation studies.

use crate::chain::TaskChain;
use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Default fraction of tasks that are "large" in the HighLow pattern (paper: 10 %).
pub const HIGHLOW_DEFAULT_TASK_FRACTION: f64 = 0.10;
/// Default fraction of the weight held by the large tasks (paper: 60 %).
pub const HIGHLOW_DEFAULT_WEIGHT_FRACTION: f64 = 0.60;

/// A recipe for distributing a total weight over `n` tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WeightPattern {
    /// All tasks share the same weight `W/n`.
    Uniform,
    /// Task `Ti` has weight proportional to `(n + 1 − i)²` (quadratically
    /// decreasing), normalised so the weights sum to the requested total.
    Decrease,
    /// The first `ceil(task_fraction · n)` tasks share `weight_fraction` of the
    /// total weight; the remaining tasks share the rest.
    HighLow {
        /// Fraction of tasks that are large (paper: 0.10).
        task_fraction: f64,
        /// Fraction of the total weight held by the large tasks (paper: 0.60).
        weight_fraction: f64,
    },
    /// Task `Ti` has weight proportional to `i²` (quadratically increasing) —
    /// the mirror image of `Decrease`, used in ablations.
    Increase,
    /// Explicit per-task proportions (scaled to the requested total weight).
    Proportions(Vec<f64>),
}

impl WeightPattern {
    /// The HighLow pattern with the paper's parameters (10 % / 60 %).
    pub fn high_low_default() -> Self {
        WeightPattern::HighLow {
            task_fraction: HIGHLOW_DEFAULT_TASK_FRACTION,
            weight_fraction: HIGHLOW_DEFAULT_WEIGHT_FRACTION,
        }
    }

    /// Looks a pattern up by the machine-friendly name returned by
    /// [`Self::name`] — the parser shared by the CLI and the service
    /// protocol (parameterised patterns resolve to their paper defaults).
    pub fn by_name(name: &str) -> Option<WeightPattern> {
        match name {
            "uniform" => Some(WeightPattern::Uniform),
            "decrease" => Some(WeightPattern::Decrease),
            "increase" => Some(WeightPattern::Increase),
            "highlow" => Some(WeightPattern::high_low_default()),
            _ => None,
        }
    }

    /// Short machine-friendly name (used in CSV output and bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            WeightPattern::Uniform => "uniform",
            WeightPattern::Decrease => "decrease",
            WeightPattern::HighLow { .. } => "highlow",
            WeightPattern::Increase => "increase",
            WeightPattern::Proportions(_) => "proportions",
        }
    }

    /// Generates a [`TaskChain`] of `n` tasks whose weights follow this pattern
    /// and sum to `total_weight`.
    ///
    /// # Errors
    /// Returns [`ModelError`] when `n == 0`, `total_weight` is not finite and
    /// non-negative, or the pattern parameters are out of range.
    pub fn generate(&self, n: usize, total_weight: f64) -> Result<TaskChain, ModelError> {
        if n == 0 {
            return Err(ModelError::EmptyChain);
        }
        if !total_weight.is_finite() || total_weight < 0.0 {
            return Err(ModelError::InvalidParameter {
                name: "total_weight",
                value: total_weight,
                expected: "a finite value >= 0",
            });
        }
        let weights = match self {
            WeightPattern::Uniform => vec![total_weight / n as f64; n],
            WeightPattern::Decrease => scaled_proportions(
                (1..=n).map(|i| ((n + 1 - i) as f64).powi(2)).collect(),
                total_weight,
            ),
            WeightPattern::Increase => {
                scaled_proportions((1..=n).map(|i| (i as f64).powi(2)).collect(), total_weight)
            }
            WeightPattern::HighLow { task_fraction, weight_fraction } => {
                if !(0.0..=1.0).contains(task_fraction) || !task_fraction.is_finite() {
                    return Err(ModelError::InvalidParameter {
                        name: "task_fraction",
                        value: *task_fraction,
                        expected: "a value in [0, 1]",
                    });
                }
                if !(0.0..=1.0).contains(weight_fraction) || !weight_fraction.is_finite() {
                    return Err(ModelError::InvalidParameter {
                        name: "weight_fraction",
                        value: *weight_fraction,
                        expected: "a value in [0, 1]",
                    });
                }
                high_low_weights(n, total_weight, *task_fraction, *weight_fraction)
            }
            WeightPattern::Proportions(props) => {
                if props.len() != n {
                    return Err(ModelError::InvalidPattern {
                        reason: format!(
                            "explicit proportions have length {} but {n} tasks were requested",
                            props.len()
                        ),
                    });
                }
                if props.iter().any(|p| !p.is_finite() || *p < 0.0) {
                    return Err(ModelError::InvalidPattern {
                        reason: "explicit proportions must be finite and non-negative".into(),
                    });
                }
                if props.iter().sum::<f64>() <= 0.0 && total_weight > 0.0 {
                    return Err(ModelError::InvalidPattern {
                        reason: "explicit proportions must not all be zero".into(),
                    });
                }
                scaled_proportions(props.clone(), total_weight)
            }
        };
        TaskChain::from_weights(weights)
    }
}

/// Scales raw proportions so they sum to `total_weight`.
fn scaled_proportions(props: Vec<f64>, total_weight: f64) -> Vec<f64> {
    let sum: f64 = props.iter().sum();
    if sum == 0.0 {
        return vec![0.0; props.len()];
    }
    props.into_iter().map(|p| p / sum * total_weight).collect()
}

/// Builds the HighLow weight vector: the first `n_large = max(1, round(f_t·n))`
/// tasks share `f_w` of the weight, the rest share `1 − f_w`.
fn high_low_weights(n: usize, total: f64, task_fraction: f64, weight_fraction: f64) -> Vec<f64> {
    // The paper uses "10 % of the tasks"; for n = 50 that is exactly 5 tasks.
    let n_large = ((task_fraction * n as f64).round() as usize).clamp(1, n);
    let n_small = n - n_large;
    let large_total = total * weight_fraction;
    let small_total = total - large_total;
    let mut weights = Vec::with_capacity(n);
    if n_small == 0 {
        // Degenerate: every task is "large"; spread everything uniformly.
        weights.extend(std::iter::repeat_n(total / n as f64, n));
        return weights;
    }
    weights.extend(std::iter::repeat_n(large_total / n_large as f64, n_large));
    weights.extend(std::iter::repeat_n(small_total / n_small as f64, n_small));
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::approx_eq;

    const W: f64 = 25_000.0;

    #[test]
    fn uniform_matches_paper_setup() {
        let chain = WeightPattern::Uniform.generate(50, W).unwrap();
        assert_eq!(chain.len(), 50);
        assert!(approx_eq(chain.total_weight(), W, 1e-9));
        assert!(approx_eq(chain.weight(1), 500.0, 1e-9));
        assert!(approx_eq(chain.weight(50), 500.0, 1e-9));
    }

    #[test]
    fn decrease_is_quadratic_and_normalised() {
        let n = 50;
        let chain = WeightPattern::Decrease.generate(n, W).unwrap();
        assert!(approx_eq(chain.total_weight(), W, 1e-9));
        // w_i ∝ (n+1−i)²: first task is the largest, last the smallest.
        assert!(chain.weight(1) > chain.weight(2));
        assert!(chain.weight(n - 1) > chain.weight(n));
        // Ratio between first and last is n² = 2500.
        assert!(approx_eq(chain.weight(1) / chain.weight(n), (n * n) as f64, 1e-6));
        // The paper's α ≈ 3W/n³ approximation: w_1 = α·n² ≈ 3W/n = 1500 s.
        assert!((chain.weight(1) - 3.0 * W / n as f64).abs() < 60.0);
    }

    #[test]
    fn increase_mirrors_decrease() {
        let n = 20;
        let dec = WeightPattern::Decrease.generate(n, W).unwrap();
        let inc = WeightPattern::Increase.generate(n, W).unwrap();
        for i in 1..=n {
            assert!(approx_eq(dec.weight(i), inc.weight(n + 1 - i), 1e-9));
        }
    }

    #[test]
    fn highlow_matches_paper_example() {
        // Paper §IV: n = 50, W = 25000 → 5 large tasks of 3000 s each and
        // 45 small tasks of ≈ 222 s each.
        let chain = WeightPattern::high_low_default().generate(50, W).unwrap();
        assert!(approx_eq(chain.total_weight(), W, 1e-9));
        assert!(approx_eq(chain.weight(1), 3000.0, 1e-9));
        assert!(approx_eq(chain.weight(5), 3000.0, 1e-9));
        assert!(approx_eq(chain.weight(6), 10_000.0 / 45.0, 1e-9));
        assert!(approx_eq(chain.weight(50), 10_000.0 / 45.0, 1e-9));
    }

    #[test]
    fn highlow_always_has_at_least_one_large_task() {
        let chain = WeightPattern::high_low_default().generate(3, 300.0).unwrap();
        // round(0.1·3) = 0 → clamped to 1 large task holding 60 % of the weight.
        assert!(approx_eq(chain.weight(1), 180.0, 1e-9));
        assert!(approx_eq(chain.weight(2), 60.0, 1e-9));
    }

    #[test]
    fn highlow_all_large_degenerates_to_uniform() {
        let p = WeightPattern::HighLow { task_fraction: 1.0, weight_fraction: 0.6 };
        let chain = p.generate(4, 100.0).unwrap();
        for i in 1..=4 {
            assert!(approx_eq(chain.weight(i), 25.0, 1e-9));
        }
    }

    #[test]
    fn highlow_rejects_out_of_range_fractions() {
        assert!(WeightPattern::HighLow { task_fraction: -0.1, weight_fraction: 0.6 }
            .generate(10, W)
            .is_err());
        assert!(WeightPattern::HighLow { task_fraction: 0.1, weight_fraction: 1.5 }
            .generate(10, W)
            .is_err());
    }

    #[test]
    fn proportions_scale_to_total() {
        let p = WeightPattern::Proportions(vec![1.0, 2.0, 7.0]);
        let chain = p.generate(3, 100.0).unwrap();
        assert!(approx_eq(chain.weight(1), 10.0, 1e-12));
        assert!(approx_eq(chain.weight(2), 20.0, 1e-12));
        assert!(approx_eq(chain.weight(3), 70.0, 1e-12));
    }

    #[test]
    fn proportions_length_mismatch_is_error() {
        let p = WeightPattern::Proportions(vec![1.0, 2.0]);
        assert!(p.generate(3, 100.0).is_err());
    }

    #[test]
    fn proportions_all_zero_is_error() {
        let p = WeightPattern::Proportions(vec![0.0, 0.0]);
        assert!(p.generate(2, 100.0).is_err());
    }

    #[test]
    fn generators_reject_zero_tasks_and_bad_totals() {
        assert!(WeightPattern::Uniform.generate(0, W).is_err());
        assert!(WeightPattern::Uniform.generate(5, f64::NAN).is_err());
        assert!(WeightPattern::Uniform.generate(5, -1.0).is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(WeightPattern::Uniform.name(), "uniform");
        assert_eq!(WeightPattern::Decrease.name(), "decrease");
        assert_eq!(WeightPattern::high_low_default().name(), "highlow");
        assert_eq!(WeightPattern::Increase.name(), "increase");
        assert_eq!(WeightPattern::Proportions(vec![1.0]).name(), "proportions");
    }

    #[test]
    fn all_patterns_preserve_total_weight() {
        for pattern in [
            WeightPattern::Uniform,
            WeightPattern::Decrease,
            WeightPattern::Increase,
            WeightPattern::high_low_default(),
        ] {
            for n in [1usize, 2, 7, 50] {
                let chain = pattern.generate(n, W).unwrap();
                assert!(
                    approx_eq(chain.total_weight(), W, 1e-9),
                    "pattern {} with n={n}",
                    pattern.name()
                );
            }
        }
    }
}
