//! # chain2l-model
//!
//! Model substrate for the `chain2l` reproduction of *"Two-Level Checkpointing
//! and Verifications for Linear Task Graphs"* (Benoit, Cavelan, Robert, Sun —
//! IPDPSW/PDSEC 2016).
//!
//! The crate defines every object the optimizer, simulator and experiment
//! harness share:
//!
//! * [`chain::TaskChain`] — a linear chain of weighted tasks with `O(1)`
//!   interval-work queries;
//! * [`pattern::WeightPattern`] — the Uniform / Decrease / HighLow weight
//!   generators of §IV (plus extras);
//! * [`platform::Platform`] and [`platform::scr`] — error rates and checkpoint
//!   costs, including the four Table I platforms;
//! * [`cost::ResilienceCosts`] — the complete cost model (`C_D`, `C_M`, `R_D`,
//!   `R_M`, `V*`, `V`, recall `r`);
//! * [`schedule::Schedule`] / [`schedule::Action`] — a placement of resilience
//!   actions over the task boundaries, with the paper's structural invariants
//!   made unrepresentable;
//! * [`scenario::Scenario`] — one complete problem instance, exposing the
//!   probabilistic primitives `p^f`, `p^s` and `T^lost`;
//! * [`math`] — numerically stable kernels shared by every consumer.
//!
//! # Example
//!
//! ```
//! use chain2l_model::platform::scr;
//! use chain2l_model::pattern::WeightPattern;
//! use chain2l_model::scenario::Scenario;
//!
//! // The exact setup of Figure 5, row 1 (Hera, Uniform, 50 tasks, 25000 s).
//! let scenario = Scenario::paper_setup(&scr::hera(), &WeightPattern::Uniform, 50, 25_000.0)
//!     .expect("valid paper setup");
//! assert_eq!(scenario.task_count(), 50);
//! assert_eq!(scenario.costs.disk_checkpoint, 300.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chain;
pub mod cost;
pub mod error;
pub mod math;
pub mod pattern;
pub mod platform;
pub mod scenario;
pub mod schedule;

pub use chain::{Task, TaskChain};
pub use cost::ResilienceCosts;
pub use error::ModelError;
pub use pattern::WeightPattern;
pub use platform::Platform;
pub use scenario::Scenario;
pub use schedule::{Action, ActionCounts, Schedule};
