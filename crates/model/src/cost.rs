//! Resilience cost model.
//!
//! [`ResilienceCosts`] gathers every cost parameter of the model of Section II:
//! checkpoint costs `C_D`/`C_M`, recovery costs `R_D`/`R_M`, guaranteed and
//! partial verification costs `V*`/`V`, and the recall `r` of the partial
//! verification.  The paper's simulation setup (§IV) derives all of them from
//! the platform parameters:
//!
//! * `R_D = C_D`, `R_M = C_M` (recovery ≈ checkpoint, following Moody et al.);
//! * `V* = C_M` (a guaranteed verification reads all the data in memory);
//! * `V = V*/100` and `r = 0.8` (cheap partial detectors with good recall).
//!
//! Those defaults are provided by [`ResilienceCosts::paper_defaults`]; every
//! field can also be set explicitly through the builder for ablation studies.

use crate::error::ModelError;
use crate::platform::Platform;
use serde::{Deserialize, Serialize};

/// Ratio `V* / V` used by the paper (partial verification is 100× cheaper).
pub const PAPER_PARTIAL_COST_RATIO: f64 = 100.0;
/// Partial-verification recall used by the paper.
pub const PAPER_PARTIAL_RECALL: f64 = 0.8;

/// All cost parameters of the resilience model (seconds, except `partial_recall`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceCosts {
    /// Disk checkpoint cost `C_D`.
    pub disk_checkpoint: f64,
    /// Memory checkpoint cost `C_M`.
    pub memory_checkpoint: f64,
    /// Disk recovery cost `R_D` (includes restoring the memory state).
    pub disk_recovery: f64,
    /// Memory recovery cost `R_M`.
    pub memory_recovery: f64,
    /// Guaranteed verification cost `V*`.
    pub guaranteed_verification: f64,
    /// Partial verification cost `V`.
    pub partial_verification: f64,
    /// Partial verification recall `r ∈ (0, 1]`: fraction of silent errors detected.
    pub partial_recall: f64,
}

impl ResilienceCosts {
    /// Builds the paper's §IV cost model from a platform:
    /// `R_D = C_D`, `R_M = C_M`, `V* = C_M`, `V = V*/100`, `r = 0.8`.
    pub fn paper_defaults(platform: &Platform) -> Self {
        let v_star = platform.memory_checkpoint_cost;
        Self {
            disk_checkpoint: platform.disk_checkpoint_cost,
            memory_checkpoint: platform.memory_checkpoint_cost,
            disk_recovery: platform.disk_checkpoint_cost,
            memory_recovery: platform.memory_checkpoint_cost,
            guaranteed_verification: v_star,
            partial_verification: v_star / PAPER_PARTIAL_COST_RATIO,
            partial_recall: PAPER_PARTIAL_RECALL,
        }
    }

    /// Starts a [`CostBuilder`] pre-filled with the paper defaults for `platform`.
    pub fn builder(platform: &Platform) -> CostBuilder {
        CostBuilder { costs: Self::paper_defaults(platform) }
    }

    /// `g = 1 − r`: probability that a partial verification misses a silent error.
    pub fn miss_probability(&self) -> f64 {
        1.0 - self.partial_recall
    }

    /// Validates every field:
    /// costs must be finite and non-negative, the recall must lie in `(0, 1]`,
    /// and the partial verification must not be more expensive than the
    /// guaranteed one (otherwise it would never be useful and the §III-B
    /// derivation loses its meaning).
    pub fn validate(&self) -> Result<(), ModelError> {
        let check = |name: &'static str, v: f64| -> Result<(), ModelError> {
            if !v.is_finite() || v < 0.0 {
                Err(ModelError::InvalidParameter {
                    name,
                    value: v,
                    expected: "a finite value >= 0",
                })
            } else {
                Ok(())
            }
        };
        check("disk_checkpoint", self.disk_checkpoint)?;
        check("memory_checkpoint", self.memory_checkpoint)?;
        check("disk_recovery", self.disk_recovery)?;
        check("memory_recovery", self.memory_recovery)?;
        check("guaranteed_verification", self.guaranteed_verification)?;
        check("partial_verification", self.partial_verification)?;
        if !self.partial_recall.is_finite()
            || self.partial_recall <= 0.0
            || self.partial_recall > 1.0
        {
            return Err(ModelError::InvalidParameter {
                name: "partial_recall",
                value: self.partial_recall,
                expected: "a value in (0, 1]",
            });
        }
        if self.partial_verification > self.guaranteed_verification {
            return Err(ModelError::InvalidParameter {
                name: "partial_verification",
                value: self.partial_verification,
                expected: "a cost <= guaranteed_verification",
            });
        }
        Ok(())
    }
}

/// Fluent builder for [`ResilienceCosts`], used by ablation sweeps.
#[derive(Debug, Clone)]
pub struct CostBuilder {
    costs: ResilienceCosts,
}

impl CostBuilder {
    /// Sets the disk checkpoint cost `C_D`.
    pub fn disk_checkpoint(mut self, v: f64) -> Self {
        self.costs.disk_checkpoint = v;
        self
    }

    /// Sets the memory checkpoint cost `C_M`.
    pub fn memory_checkpoint(mut self, v: f64) -> Self {
        self.costs.memory_checkpoint = v;
        self
    }

    /// Sets the disk recovery cost `R_D`.
    pub fn disk_recovery(mut self, v: f64) -> Self {
        self.costs.disk_recovery = v;
        self
    }

    /// Sets the memory recovery cost `R_M`.
    pub fn memory_recovery(mut self, v: f64) -> Self {
        self.costs.memory_recovery = v;
        self
    }

    /// Sets the guaranteed verification cost `V*`.
    pub fn guaranteed_verification(mut self, v: f64) -> Self {
        self.costs.guaranteed_verification = v;
        self
    }

    /// Sets the partial verification cost `V`.
    pub fn partial_verification(mut self, v: f64) -> Self {
        self.costs.partial_verification = v;
        self
    }

    /// Sets the partial verification recall `r`.
    pub fn partial_recall(mut self, r: f64) -> Self {
        self.costs.partial_recall = r;
        self
    }

    /// Validates and returns the cost model.
    pub fn build(self) -> Result<ResilienceCosts, ModelError> {
        self.costs.validate()?;
        Ok(self.costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::scr;

    #[test]
    fn paper_defaults_follow_section_four() {
        let hera = scr::hera();
        let c = ResilienceCosts::paper_defaults(&hera);
        assert_eq!(c.disk_checkpoint, 300.0);
        assert_eq!(c.memory_checkpoint, 15.4);
        assert_eq!(c.disk_recovery, 300.0);
        assert_eq!(c.memory_recovery, 15.4);
        assert_eq!(c.guaranteed_verification, 15.4);
        assert!((c.partial_verification - 0.154).abs() < 1e-12);
        assert_eq!(c.partial_recall, 0.8);
        assert!((c.miss_probability() - 0.2).abs() < 1e-12);
        c.validate().unwrap();
    }

    #[test]
    fn paper_defaults_are_valid_for_all_platforms() {
        for p in scr::all() {
            ResilienceCosts::paper_defaults(&p).validate().unwrap();
        }
    }

    #[test]
    fn builder_overrides_single_fields() {
        let c = ResilienceCosts::builder(&scr::atlas())
            .partial_recall(0.5)
            .partial_verification(1.0)
            .build()
            .unwrap();
        assert_eq!(c.partial_recall, 0.5);
        assert_eq!(c.partial_verification, 1.0);
        // Untouched fields keep the paper defaults.
        assert_eq!(c.disk_checkpoint, 439.0);
        assert_eq!(c.guaranteed_verification, 9.1);
    }

    #[test]
    fn builder_can_set_every_field() {
        let c = ResilienceCosts::builder(&scr::hera())
            .disk_checkpoint(1.0)
            .memory_checkpoint(2.0)
            .disk_recovery(3.0)
            .memory_recovery(4.0)
            .guaranteed_verification(5.0)
            .partial_verification(0.5)
            .partial_recall(0.9)
            .build()
            .unwrap();
        assert_eq!(
            c,
            ResilienceCosts {
                disk_checkpoint: 1.0,
                memory_checkpoint: 2.0,
                disk_recovery: 3.0,
                memory_recovery: 4.0,
                guaranteed_verification: 5.0,
                partial_verification: 0.5,
                partial_recall: 0.9,
            }
        );
    }

    #[test]
    fn validate_rejects_out_of_range_recall() {
        let mut c = ResilienceCosts::paper_defaults(&scr::hera());
        c.partial_recall = 0.0;
        assert!(c.validate().is_err());
        c.partial_recall = 1.2;
        assert!(c.validate().is_err());
        c.partial_recall = f64::NAN;
        assert!(c.validate().is_err());
        c.partial_recall = 1.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_negative_costs() {
        let mut c = ResilienceCosts::paper_defaults(&scr::hera());
        c.disk_recovery = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_partial_more_expensive_than_guaranteed() {
        let r = ResilienceCosts::builder(&scr::hera()).partial_verification(100.0).build();
        assert!(r.is_err());
    }
}
