//! Numerically stable mathematical kernels used throughout the library.
//!
//! The closed-form expectations of the paper are built from expressions such as
//! `(e^{λW} − 1) / λ`, `1/λ − W/(e^{λW} − 1)` and `1 − e^{−λW}`.  For the error
//! rates found in Table I of the paper (`λ ≈ 10⁻⁷..10⁻⁵ s⁻¹`) and segment
//! lengths of a few hundred seconds, the exponents are tiny and the naive
//! formulas lose most of their significant digits (or divide by zero outright
//! when a rate is exactly `0`).  Every function in this module is written so
//! that the `λ → 0` and `W → 0` limits are exact and the relative error stays
//! at the level of machine precision over the whole parameter range exercised
//! by the paper.

/// Relative tolerance used by [`approx_eq`] when comparing expectations.
pub const DEFAULT_REL_TOL: f64 = 1e-9;

/// Computes `e^x − 1` without cancellation for small `x`.
///
/// Thin wrapper over [`f64::exp_m1`], kept as a named function so call sites
/// read like the paper's equations.
#[inline]
pub fn exp_m1(x: f64) -> f64 {
    x.exp_m1()
}

/// Computes `(e^{λ w} − 1) / λ`.
///
/// This is the expected *inflation* factor integral that appears in Eq. (4) of
/// the paper.  The limit for `λ → 0` is `w`, which this function returns
/// exactly (instead of `0/0`).
///
/// # Panics
/// Panics in debug builds if `λ < 0` or `w < 0`.
#[inline]
pub fn exp_m1_over_lambda(lambda: f64, w: f64) -> f64 {
    debug_assert!(lambda >= 0.0, "negative rate: {lambda}");
    debug_assert!(w >= 0.0, "negative work: {w}");
    if lambda == 0.0 {
        return w;
    }
    let x = lambda * w;
    if x < 1e-12 {
        // Second-order Taylor expansion: (e^x - 1)/λ = w (1 + x/2 + x²/6 + …).
        w * (1.0 + 0.5 * x + x * x / 6.0)
    } else {
        x.exp_m1() / lambda
    }
}

/// Probability that at least one Poisson event with rate `λ` strikes during
/// `w` seconds of computation: `1 − e^{−λ w}`.
#[inline]
pub fn prob_at_least_one(lambda: f64, w: f64) -> f64 {
    debug_assert!(lambda >= 0.0, "negative rate: {lambda}");
    debug_assert!(w >= 0.0, "negative work: {w}");
    -(-lambda * w).exp_m1()
}

/// Expected time lost to a fail-stop error *given* that one strikes during `w`
/// seconds of computation (Eq. (3) of the paper):
///
/// ```text
/// T_lost = 1/λ − w / (e^{λ w} − 1)
/// ```
///
/// The `λ → 0` (or `w → 0`) limit is `w / 2`: conditioned on a strike, the
/// arrival time of an exponential clipped to `[0, w]` tends to the uniform
/// distribution.
#[inline]
pub fn expected_time_lost(lambda: f64, w: f64) -> f64 {
    debug_assert!(lambda >= 0.0, "negative rate: {lambda}");
    debug_assert!(w >= 0.0, "negative work: {w}");
    if w == 0.0 {
        return 0.0;
    }
    let x = lambda * w;
    if x < 1e-6 {
        // Expand 1/λ − w/(e^{λw}−1) = w·(1/x − 1/(e^x − 1))
        //                            = w·(1/2 − x/12 + x³/720 − …).
        w * (0.5 - x / 12.0 + x * x * x / 720.0)
    } else {
        1.0 / lambda - w / x.exp_m1()
    }
}

/// `e^{λ w}`, the expected number of executions factor used throughout the
/// closed forms.  Provided for symmetry / readability.
#[inline]
pub fn exp_lw(lambda: f64, w: f64) -> f64 {
    (lambda * w).exp()
}

/// Relative/absolute comparison of two non-negative expectations.
///
/// Returns `true` when `|a − b| ≤ tol · max(1, |a|, |b|)`.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = 1.0f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= tol * scale
}

/// Kahan (compensated) summation over an iterator of `f64`.
///
/// The figure harness sums thousands of small expectations; compensated
/// summation keeps the reported series independent of iteration order.
pub fn kahan_sum<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    for v in values {
        let y = v - comp;
        let t = sum + y;
        comp = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Mean of a slice using compensated summation. Returns `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    kahan_sum(values.iter().copied()) / values.len() as f64
}

/// Sample standard deviation (unbiased, `n − 1` denominator).
/// Returns `0.0` when fewer than two samples are provided.
pub fn sample_std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let ss = kahan_sum(values.iter().map(|v| (v - m) * (v - m)));
    (ss / (values.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_m1_over_lambda_zero_rate_is_work() {
        assert_eq!(exp_m1_over_lambda(0.0, 123.0), 123.0);
        assert_eq!(exp_m1_over_lambda(0.0, 0.0), 0.0);
    }

    #[test]
    fn exp_m1_over_lambda_matches_naive_for_moderate_rates() {
        let lambda = 1e-3_f64;
        let w = 500.0;
        let naive = ((lambda * w).exp() - 1.0) / lambda;
        assert!(approx_eq(exp_m1_over_lambda(lambda, w), naive, 1e-12));
    }

    #[test]
    fn exp_m1_over_lambda_small_rate_is_close_to_work() {
        // λW ≈ 5e-5: the result must be barely above W.
        let v = exp_m1_over_lambda(1e-7, 500.0);
        assert!(v > 500.0);
        assert!(v < 500.02);
    }

    #[test]
    fn exp_m1_over_lambda_taylor_branch_is_continuous() {
        // Check continuity across the 1e-12 branch threshold.
        let w = 1.0;
        let below = exp_m1_over_lambda(0.9e-12, w);
        let above = exp_m1_over_lambda(1.1e-12, w);
        assert!(approx_eq(below, above, 1e-12));
    }

    #[test]
    fn prob_at_least_one_limits() {
        assert_eq!(prob_at_least_one(0.0, 1e9), 0.0);
        assert_eq!(prob_at_least_one(1e-6, 0.0), 0.0);
        assert!(approx_eq(prob_at_least_one(1.0, 1e9), 1.0, 1e-15));
    }

    #[test]
    fn prob_at_least_one_small_rate() {
        // 1 - e^{-x} ≈ x for tiny x.
        let p = prob_at_least_one(1e-9, 1.0);
        assert!(approx_eq(p, 1e-9, 1e-6));
    }

    #[test]
    fn expected_time_lost_limit_is_half_work() {
        let w = 300.0;
        assert!(approx_eq(expected_time_lost(0.0, w), w / 2.0, 1e-12));
        assert!(approx_eq(expected_time_lost(1e-12, w), w / 2.0, 1e-9));
    }

    #[test]
    fn expected_time_lost_matches_naive_for_moderate_rates() {
        let lambda = 2e-3_f64;
        let w = 1000.0;
        let naive = 1.0 / lambda - w / ((lambda * w).exp() - 1.0);
        assert!(approx_eq(expected_time_lost(lambda, w), naive, 1e-10));
    }

    #[test]
    fn expected_time_lost_bounded_by_work() {
        // Conditioned on a strike inside [0, w], the loss is within [0, w].
        for &(l, w) in &[(1e-7, 25000.0), (1e-4, 500.0), (0.5, 3.0), (0.0, 7.0)] {
            let t = expected_time_lost(l, w);
            assert!(t >= 0.0 && t <= w, "T_lost={t} out of [0,{w}] for λ={l}");
        }
    }

    #[test]
    fn expected_time_lost_is_monotone_decreasing_in_rate() {
        // Higher rates skew the conditional strike earlier.
        let w = 1000.0;
        let mut prev = expected_time_lost(0.0, w);
        for &l in &[1e-8, 1e-6, 1e-4, 1e-2, 1.0] {
            let cur = expected_time_lost(l, w);
            assert!(cur <= prev + 1e-12, "λ={l}: {cur} > {prev}");
            prev = cur;
        }
    }

    #[test]
    fn expected_time_lost_zero_work() {
        assert_eq!(expected_time_lost(1e-5, 0.0), 0.0);
    }

    #[test]
    fn kahan_sum_matches_exact_for_adversarial_order() {
        // 1 + 1e-16 repeated: naive summation loses all the small terms.
        let mut values = vec![1.0f64];
        values.extend(std::iter::repeat_n(1e-16, 100_000));
        let s = kahan_sum(values.iter().copied());
        assert!(approx_eq(s, 1.0 + 1e-11, 1e-12));
    }

    #[test]
    fn mean_and_std_dev_basic() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(approx_eq(mean(&v), 5.0, 1e-12));
        // Sample std dev of this classic dataset is sqrt(32/7).
        assert!(approx_eq(sample_std_dev(&v), (32.0f64 / 7.0).sqrt(), 1e-12));
    }

    #[test]
    fn mean_empty_and_single() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[3.5]), 3.5);
        assert_eq!(sample_std_dev(&[3.5]), 0.0);
    }

    #[test]
    fn approx_eq_uses_relative_scale() {
        assert!(approx_eq(1e9, 1e9 + 0.5, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(approx_eq(0.0, 0.0, 0.0));
    }
}
