//! Platforms: error rates and checkpoint costs.
//!
//! Table I of the paper lists four platforms whose fail-stop rate `λ_f`,
//! silent-error rate `λ_s`, disk-checkpoint cost `C_D` and memory-checkpoint
//! cost `C_M` were measured for the Scalable Checkpoint/Restart (SCR) library
//! by Moody et al. (SC'10).  [`Platform`] carries these raw parameters; the
//! full cost model (recovery costs, verification costs, recall) is assembled
//! by [`crate::cost::ResilienceCosts`] and [`crate::scenario::Scenario`].

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Seconds per day, used for MTBF conversions.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// A computing platform: size, error rates, and checkpointing costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Human-readable name (e.g. `"Hera"`).
    pub name: String,
    /// Number of nodes (informational; the rates below are already platform-wide).
    pub nodes: usize,
    /// Platform-wide fail-stop error rate (errors per second).
    pub lambda_fail_stop: f64,
    /// Platform-wide silent error (SDC) rate (errors per second).
    pub lambda_silent: f64,
    /// Disk (stable-storage) checkpoint cost `C_D`, seconds.
    pub disk_checkpoint_cost: f64,
    /// In-memory checkpoint cost `C_M`, seconds.
    pub memory_checkpoint_cost: f64,
}

impl Platform {
    /// Creates a platform after validating every parameter.
    ///
    /// # Errors
    /// Returns [`ModelError::InvalidParameter`] when a rate or a cost is
    /// negative, NaN or infinite.
    pub fn new(
        name: impl Into<String>,
        nodes: usize,
        lambda_fail_stop: f64,
        lambda_silent: f64,
        disk_checkpoint_cost: f64,
        memory_checkpoint_cost: f64,
    ) -> Result<Self, ModelError> {
        let check = |name: &'static str, v: f64| -> Result<(), ModelError> {
            if !v.is_finite() || v < 0.0 {
                Err(ModelError::InvalidParameter {
                    name,
                    value: v,
                    expected: "a finite value >= 0",
                })
            } else {
                Ok(())
            }
        };
        check("lambda_fail_stop", lambda_fail_stop)?;
        check("lambda_silent", lambda_silent)?;
        check("disk_checkpoint_cost", disk_checkpoint_cost)?;
        check("memory_checkpoint_cost", memory_checkpoint_cost)?;
        Ok(Self {
            name: name.into(),
            nodes,
            lambda_fail_stop,
            lambda_silent,
            disk_checkpoint_cost,
            memory_checkpoint_cost,
        })
    }

    /// Platform mean time between fail-stop errors, in seconds
    /// (`∞` when the rate is zero).
    pub fn fail_stop_mtbf_seconds(&self) -> f64 {
        if self.lambda_fail_stop == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.lambda_fail_stop
        }
    }

    /// Platform mean time between silent errors, in seconds.
    pub fn silent_mtbf_seconds(&self) -> f64 {
        if self.lambda_silent == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.lambda_silent
        }
    }

    /// Fail-stop MTBF expressed in days (the unit used in the paper's prose).
    pub fn fail_stop_mtbf_days(&self) -> f64 {
        self.fail_stop_mtbf_seconds() / SECONDS_PER_DAY
    }

    /// Silent-error MTBF expressed in days.
    pub fn silent_mtbf_days(&self) -> f64 {
        self.silent_mtbf_seconds() / SECONDS_PER_DAY
    }

    /// Returns a copy of this platform with both error rates multiplied by
    /// `factor` — handy for "what if errors were k× more frequent" sweeps.
    pub fn with_scaled_rates(&self, factor: f64) -> Result<Self, ModelError> {
        Platform::new(
            format!("{} (rates x{factor})", self.name),
            self.nodes,
            self.lambda_fail_stop * factor,
            self.lambda_silent * factor,
            self.disk_checkpoint_cost,
            self.memory_checkpoint_cost,
        )
    }

    /// Returns a copy of this platform with both checkpoint costs multiplied by
    /// `factor`.
    pub fn with_scaled_costs(&self, factor: f64) -> Result<Self, ModelError> {
        Platform::new(
            format!("{} (costs x{factor})", self.name),
            self.nodes,
            self.lambda_fail_stop,
            self.lambda_silent,
            self.disk_checkpoint_cost * factor,
            self.memory_checkpoint_cost * factor,
        )
    }
}

/// The four platforms of Table I, with the exact published parameters.
pub mod scr {
    use super::Platform;

    /// Hera: 256 nodes, λ_f = 9.46e-7, λ_s = 3.38e-6, C_D = 300 s, C_M = 15.4 s.
    pub fn hera() -> Platform {
        Platform::new("Hera", 256, 9.46e-7, 3.38e-6, 300.0, 15.4)
            .expect("Table I parameters are valid")
    }

    /// Atlas: 512 nodes, λ_f = 5.19e-7, λ_s = 7.78e-6, C_D = 439 s, C_M = 9.1 s.
    pub fn atlas() -> Platform {
        Platform::new("Atlas", 512, 5.19e-7, 7.78e-6, 439.0, 9.1)
            .expect("Table I parameters are valid")
    }

    /// Coastal: 1024 nodes, λ_f = 4.02e-7, λ_s = 2.01e-6, C_D = 1051 s, C_M = 4.5 s.
    pub fn coastal() -> Platform {
        Platform::new("Coastal", 1024, 4.02e-7, 2.01e-6, 1051.0, 4.5)
            .expect("Table I parameters are valid")
    }

    /// Coastal SSD: 1024 nodes, λ_f = 4.02e-7, λ_s = 2.01e-6, C_D = 2500 s, C_M = 180 s.
    pub fn coastal_ssd() -> Platform {
        Platform::new("Coastal SSD", 1024, 4.02e-7, 2.01e-6, 2500.0, 180.0)
            .expect("Table I parameters are valid")
    }

    /// All four Table I platforms, in the order of the paper.
    pub fn all() -> Vec<Platform> {
        vec![hera(), atlas(), coastal(), coastal_ssd()]
    }

    /// Looks a platform up by (case-insensitive) name; accepts `"coastal-ssd"`,
    /// `"coastal_ssd"` and `"coastal ssd"` spellings.
    pub fn by_name(name: &str) -> Option<Platform> {
        let normalized: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match normalized.as_str() {
            "hera" => Some(hera()),
            "atlas" => Some(atlas()),
            "coastal" => Some(coastal()),
            "coastalssd" => Some(coastal_ssd()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_values_are_exactly_the_published_ones() {
        let hera = scr::hera();
        assert_eq!(hera.nodes, 256);
        assert_eq!(hera.lambda_fail_stop, 9.46e-7);
        assert_eq!(hera.lambda_silent, 3.38e-6);
        assert_eq!(hera.disk_checkpoint_cost, 300.0);
        assert_eq!(hera.memory_checkpoint_cost, 15.4);

        let atlas = scr::atlas();
        assert_eq!(atlas.nodes, 512);
        assert_eq!(atlas.lambda_fail_stop, 5.19e-7);
        assert_eq!(atlas.lambda_silent, 7.78e-6);
        assert_eq!(atlas.disk_checkpoint_cost, 439.0);
        assert_eq!(atlas.memory_checkpoint_cost, 9.1);

        let coastal = scr::coastal();
        assert_eq!(coastal.nodes, 1024);
        assert_eq!(coastal.lambda_fail_stop, 4.02e-7);
        assert_eq!(coastal.lambda_silent, 2.01e-6);
        assert_eq!(coastal.disk_checkpoint_cost, 1051.0);
        assert_eq!(coastal.memory_checkpoint_cost, 4.5);

        let ssd = scr::coastal_ssd();
        assert_eq!(ssd.nodes, 1024);
        assert_eq!(ssd.lambda_fail_stop, 4.02e-7);
        assert_eq!(ssd.lambda_silent, 2.01e-6);
        assert_eq!(ssd.disk_checkpoint_cost, 2500.0);
        assert_eq!(ssd.memory_checkpoint_cost, 180.0);
    }

    #[test]
    fn mtbf_days_match_the_paper_prose() {
        // Paper §IV: Hera has a platform MTBF of 12.2 days for fail-stop errors
        // and 3.4 days for silent errors; Coastal 28.8 and 5.8 days.
        let hera = scr::hera();
        assert!((hera.fail_stop_mtbf_days() - 12.2).abs() < 0.1);
        assert!((hera.silent_mtbf_days() - 3.4).abs() < 0.1);
        let coastal = scr::coastal();
        assert!((coastal.fail_stop_mtbf_days() - 28.8).abs() < 0.1);
        assert!((coastal.silent_mtbf_days() - 5.8).abs() < 0.1);
    }

    #[test]
    fn zero_rate_platform_has_infinite_mtbf() {
        let p = Platform::new("ideal", 1, 0.0, 0.0, 10.0, 1.0).unwrap();
        assert!(p.fail_stop_mtbf_seconds().is_infinite());
        assert!(p.silent_mtbf_days().is_infinite());
    }

    #[test]
    fn new_rejects_invalid_parameters() {
        assert!(Platform::new("bad", 1, -1e-7, 0.0, 1.0, 1.0).is_err());
        assert!(Platform::new("bad", 1, 0.0, f64::NAN, 1.0, 1.0).is_err());
        assert!(Platform::new("bad", 1, 0.0, 0.0, -5.0, 1.0).is_err());
        assert!(Platform::new("bad", 1, 0.0, 0.0, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn by_name_accepts_flexible_spellings() {
        assert_eq!(scr::by_name("Hera").unwrap().name, "Hera");
        assert_eq!(scr::by_name("hera").unwrap().name, "Hera");
        assert_eq!(scr::by_name("coastal ssd").unwrap().name, "Coastal SSD");
        assert_eq!(scr::by_name("coastal-SSD").unwrap().name, "Coastal SSD");
        assert_eq!(scr::by_name("coastal_ssd").unwrap().name, "Coastal SSD");
        assert!(scr::by_name("titan").is_none());
    }

    #[test]
    fn all_returns_four_platforms_in_paper_order() {
        let names: Vec<String> = scr::all().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["Hera", "Atlas", "Coastal", "Coastal SSD"]);
    }

    #[test]
    fn scaled_rates_and_costs() {
        let hera = scr::hera();
        let fast = hera.with_scaled_rates(10.0).unwrap();
        assert!((fast.lambda_fail_stop - 9.46e-6).abs() < 1e-18);
        assert_eq!(fast.disk_checkpoint_cost, hera.disk_checkpoint_cost);
        let cheap = hera.with_scaled_costs(0.5).unwrap();
        assert_eq!(cheap.disk_checkpoint_cost, 150.0);
        assert_eq!(cheap.memory_checkpoint_cost, 7.7);
        assert_eq!(cheap.lambda_silent, hera.lambda_silent);
    }
}
