//! Linear task chains.
//!
//! The application model of the paper is a chain `T1 → T2 → … → Tn` where each
//! task `Ti` carries a computational weight `w_i` (seconds).  The dynamic
//! programs constantly query `W_{i,j} = Σ_{k=i+1..j} w_k`, the time needed to
//! execute tasks `T_{i+1}` through `T_j`; [`TaskChain`] therefore stores a
//! prefix-sum array so every such query is `O(1)`.
//!
//! Indexing convention (identical to the paper): tasks are numbered `1..=n`,
//! and index `0` denotes the virtual task `T0` that is checkpointed on disk
//! and in memory at zero cost ("the application can always restart from
//! scratch").

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// A single task of the chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// 1-based position in the chain.
    pub index: usize,
    /// Computational weight in seconds.
    pub weight: f64,
}

impl Task {
    /// Creates a task; `index` is 1-based.
    pub fn new(index: usize, weight: f64) -> Self {
        Self { index, weight }
    }
}

/// A linear chain of tasks with `O(1)` interval-weight queries.
///
/// # Examples
///
/// ```
/// use chain2l_model::chain::TaskChain;
///
/// let chain = TaskChain::from_weights(vec![100.0, 200.0, 300.0]).unwrap();
/// assert_eq!(chain.len(), 3);
/// assert_eq!(chain.total_weight(), 600.0);
/// // W_{0,2} = w1 + w2
/// assert_eq!(chain.interval_weight(0, 2), 300.0);
/// // W_{1,3} = w2 + w3
/// assert_eq!(chain.interval_weight(1, 3), 500.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskChain {
    /// Weight of task `Ti` at index `i - 1`.
    weights: Vec<f64>,
    /// `prefix[i]` = `w_1 + … + w_i`; `prefix[0] = 0`.
    prefix: Vec<f64>,
}

impl TaskChain {
    /// Builds a chain from per-task weights (seconds).
    ///
    /// # Errors
    /// Returns [`ModelError::EmptyChain`] for an empty weight list and
    /// [`ModelError::InvalidWeight`] if any weight is negative, NaN or infinite.
    /// A weight of exactly `0.0` is allowed (a no-op task boundary), which the
    /// paper's model also supports.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, ModelError> {
        if weights.is_empty() {
            return Err(ModelError::EmptyChain);
        }
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(ModelError::InvalidWeight { index: i + 1, weight: w });
            }
        }
        let mut prefix = Vec::with_capacity(weights.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            prefix.push(acc);
        }
        Ok(Self { weights, prefix })
    }

    /// Builds a chain of `n` identical tasks summing to `total_weight`.
    pub fn uniform(n: usize, total_weight: f64) -> Result<Self, ModelError> {
        if n == 0 {
            return Err(ModelError::EmptyChain);
        }
        Self::from_weights(vec![total_weight / n as f64; n])
    }

    /// Number of (real) tasks `n`.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the chain has no tasks (never the case for a constructed chain,
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Weight of task `Ti` (`i` is 1-based).
    ///
    /// # Panics
    /// Panics if `i == 0` or `i > n`.
    pub fn weight(&self, i: usize) -> f64 {
        assert!(i >= 1 && i <= self.len(), "task index {i} out of range 1..={}", self.len());
        self.weights[i - 1]
    }

    /// All weights, in order `w_1 .. w_n`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Iterator over [`Task`] values.
    pub fn tasks(&self) -> impl Iterator<Item = Task> + '_ {
        self.weights.iter().enumerate().map(|(i, &w)| Task::new(i + 1, w))
    }

    /// Total computational weight `W = Σ w_i`.
    pub fn total_weight(&self) -> f64 {
        *self.prefix.last().expect("non-empty prefix")
    }

    /// `W_{i,j} = Σ_{k=i+1..j} w_k`: the work of tasks `T_{i+1}` through `T_j`.
    ///
    /// Both `i` and `j` range over `0..=n` and must satisfy `i ≤ j`;
    /// `interval_weight(i, i) == 0`.
    ///
    /// # Panics
    /// Panics if `i > j` or `j > n`.
    pub fn interval_weight(&self, i: usize, j: usize) -> f64 {
        assert!(i <= j, "interval_weight requires i <= j, got i={i}, j={j}");
        assert!(j <= self.len(), "interval end {j} out of range 0..={}", self.len());
        self.prefix[j] - self.prefix[i]
    }

    /// Cumulative weight of the first `i` tasks (`prefix sum`); `i ∈ 0..=n`.
    pub fn prefix_weight(&self, i: usize) -> f64 {
        assert!(i <= self.len(), "prefix index {i} out of range 0..={}", self.len());
        self.prefix[i]
    }

    /// Returns the 1-based index of the smallest prefix whose cumulative weight
    /// reaches `fraction` (in `[0, 1]`) of the total weight.  Useful to locate
    /// "the task at 60 % of the work" when describing placements.
    pub fn task_at_fraction(&self, fraction: f64) -> usize {
        let target = fraction.clamp(0.0, 1.0) * self.total_weight();
        for i in 1..=self.len() {
            if self.prefix[i] >= target - 1e-12 {
                return i;
            }
        }
        self.len()
    }

    /// Returns a new chain consisting of tasks `T_{i+1}..T_j` (`i < j`).
    pub fn slice(&self, i: usize, j: usize) -> Result<Self, ModelError> {
        if i >= j || j > self.len() {
            return Err(ModelError::InvalidInterval { start: i, end: j, len: self.len() });
        }
        Self::from_weights(self.weights[i..j].to_vec())
    }

    /// Concatenates two chains (`self` followed by `other`).
    pub fn concat(&self, other: &TaskChain) -> Self {
        let mut w = self.weights.clone();
        w.extend_from_slice(&other.weights);
        Self::from_weights(w).expect("concatenation of valid chains is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::approx_eq;

    #[test]
    fn from_weights_rejects_empty() {
        assert!(matches!(TaskChain::from_weights(vec![]), Err(ModelError::EmptyChain)));
    }

    #[test]
    fn from_weights_rejects_negative_nan_and_infinite() {
        assert!(TaskChain::from_weights(vec![1.0, -2.0]).is_err());
        assert!(TaskChain::from_weights(vec![f64::NAN]).is_err());
        assert!(TaskChain::from_weights(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn from_weights_reports_offending_index() {
        match TaskChain::from_weights(vec![1.0, 2.0, -3.0]) {
            Err(ModelError::InvalidWeight { index, .. }) => assert_eq!(index, 3),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn zero_weight_tasks_are_allowed() {
        let c = TaskChain::from_weights(vec![0.0, 5.0, 0.0]).unwrap();
        assert_eq!(c.total_weight(), 5.0);
        assert_eq!(c.interval_weight(0, 1), 0.0);
    }

    #[test]
    fn uniform_chain_splits_weight_evenly() {
        let c = TaskChain::uniform(50, 25000.0).unwrap();
        assert_eq!(c.len(), 50);
        assert!(approx_eq(c.total_weight(), 25000.0, 1e-9));
        assert!(approx_eq(c.weight(1), 500.0, 1e-12));
        assert!(approx_eq(c.weight(50), 500.0, 1e-12));
    }

    #[test]
    fn uniform_zero_tasks_is_error() {
        assert!(TaskChain::uniform(0, 100.0).is_err());
    }

    #[test]
    fn interval_weight_matches_direct_sum() {
        let weights = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let c = TaskChain::from_weights(weights.clone()).unwrap();
        for i in 0..=weights.len() {
            for j in i..=weights.len() {
                let direct: f64 = weights[i..j].iter().sum();
                assert!(approx_eq(c.interval_weight(i, j), direct, 1e-12), "W({i},{j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "i <= j")]
    fn interval_weight_panics_on_reversed_interval() {
        let c = TaskChain::uniform(3, 3.0).unwrap();
        let _ = c.interval_weight(2, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn weight_panics_on_zero_index() {
        let c = TaskChain::uniform(3, 3.0).unwrap();
        let _ = c.weight(0);
    }

    #[test]
    fn tasks_iterator_yields_one_based_indices() {
        let c = TaskChain::from_weights(vec![1.0, 2.0]).unwrap();
        let tasks: Vec<Task> = c.tasks().collect();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].index, 1);
        assert_eq!(tasks[1].index, 2);
        assert_eq!(tasks[1].weight, 2.0);
    }

    #[test]
    fn task_at_fraction_finds_expected_positions() {
        let c = TaskChain::uniform(10, 100.0).unwrap();
        assert_eq!(c.task_at_fraction(0.0), 1);
        assert_eq!(c.task_at_fraction(0.5), 5);
        assert_eq!(c.task_at_fraction(1.0), 10);
        assert_eq!(c.task_at_fraction(2.0), 10); // clamped
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let c = TaskChain::from_weights(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let left = c.slice(0, 2).unwrap();
        let right = c.slice(2, 4).unwrap();
        assert_eq!(left.weights(), &[1.0, 2.0]);
        assert_eq!(right.weights(), &[3.0, 4.0]);
        assert_eq!(left.concat(&right), c);
    }

    #[test]
    fn slice_rejects_bad_bounds() {
        let c = TaskChain::uniform(4, 4.0).unwrap();
        assert!(c.slice(2, 2).is_err());
        assert!(c.slice(3, 2).is_err());
        assert!(c.slice(0, 5).is_err());
    }

    #[test]
    fn serde_round_trip_preserves_prefix_queries() {
        let c = TaskChain::from_weights(vec![10.0, 20.0, 30.0]).unwrap();
        // serde_json is not a dependency; use the serde test-friendly format of
        // postcard-like manual check through serde tokens is heavy, so simply
        // check that the struct implements the traits by serializing to a
        // `serde`-compatible in-memory representation (here: bincode-free —
        // use `serde::Serialize` via to_string on Debug as a proxy is wrong),
        // so instead just clone and compare.
        let copy = c.clone();
        assert_eq!(copy.interval_weight(1, 3), 50.0);
    }
}
