//! Offline stand-in for the `wide` crate: a portable 4-lane `f64` vector.
//!
//! The workspace's DP kernels (chain2l-core) process candidate rows in
//! 4-lane blocks.  This stub provides exactly the vector surface those
//! kernels use — lane-wise arithmetic, comparisons-as-masks, blend, and
//! horizontal min — written as plain loops over `[f64; 4]` so that LLVM's
//! autovectorizer lowers them to `addpd`/`mulpd`/`minpd`/`cmppd` (SSE2) or
//! their AVX forms without a single intrinsic.
//!
//! Two properties the kernels rely on, guaranteed here and pinned by the
//! unit tests:
//!
//! 1. **IEEE-exact lane arithmetic.**  Every op is the plain binary
//!    `f64` operation per lane — no FMA contraction, no reassociation —
//!    so a lane computes bit-for-bit what the equivalent scalar code
//!    computes.  (Rust guarantees no license to fuse or reassociate
//!    float ops; vectorization only changes *which* lanes run together,
//!    never the arithmetic within a lane.)
//! 2. **Deterministic tie behaviour.**  `min` is `a < b ? a : b` — the
//!    `minpd` shape, which keeps the *second* operand on ties (and on
//!    NaN) — and `reduce_min` folds lanes as `min(min(l0, l1),
//!    min(l2, l3))`.  The chain2l kernels never feed `-0.0` or NaN into
//!    a reduction (candidate values are finite sums/products of
//!    non-negative terms), so equal-comparing lanes are bitwise
//!    identical there and the tie rule is unobservable; it is pinned by
//!    tests anyway so nobody has to re-derive it.
//!
//! No unsafe: masks are all-ones / all-zeros bit patterns built with
//! `f64::from_bits`, and blend is pure bit arithmetic on `to_bits`.

#![forbid(unsafe_code)]
#![allow(non_camel_case_types)]

use std::ops::{Add, Div, Mul, Sub};

/// All-ones `f64` bit pattern (a quiet NaN) used as the `true` mask lane.
const MASK_TRUE: u64 = u64::MAX;

/// Four `f64` lanes, processed together.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(transparent)]
pub struct f64x4([f64; 4]);

impl f64x4 {
    pub const LANES: usize = 4;

    /// All lanes `+inf` — the identity for min-reductions.
    pub const INFINITY: f64x4 = f64x4([f64::INFINITY; 4]);

    #[inline(always)]
    pub const fn new(lanes: [f64; 4]) -> Self {
        f64x4(lanes)
    }

    #[inline(always)]
    pub const fn splat(v: f64) -> Self {
        f64x4([v; 4])
    }

    /// Loads the first four elements of `s` (panics if `s.len() < 4`).
    ///
    /// Goes through [`slice::first_chunk`] so the whole load is one length
    /// check and one unaligned vector move — per-lane indexing would leave
    /// a four-branch panic chain in the caller's hot loop.
    #[inline(always)]
    pub fn from_slice(s: &[f64]) -> Self {
        match s.first_chunk::<4>() {
            Some(lanes) => f64x4(*lanes),
            None => panic!("f64x4::from_slice needs at least 4 elements"),
        }
    }

    #[inline(always)]
    pub const fn to_array(self) -> [f64; 4] {
        self.0
    }

    #[inline(always)]
    pub const fn as_array_ref(&self) -> &[f64; 4] {
        &self.0
    }

    #[inline(always)]
    pub fn lane(self, i: usize) -> f64 {
        self.0[i]
    }

    /// Lane-wise minimum, `a < b ? a : b` (the `minpd` shape): on a tie
    /// — including `-0.0` vs `0.0` — or if `a` is NaN, the lane of `rhs`
    /// survives.
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        let mut out = [0.0f64; 4];
        for (l, o) in out.iter_mut().enumerate() {
            *o = if self.0[l] < rhs.0[l] { self.0[l] } else { rhs.0[l] };
        }
        f64x4(out)
    }

    /// Lane-wise `self < rhs`, as an all-ones / all-zeros bit mask.
    #[inline(always)]
    pub fn cmp_lt(self, rhs: Self) -> Self {
        self.mask_by(rhs, |a, b| a < b)
    }

    /// Lane-wise `self <= rhs`, as an all-ones / all-zeros bit mask.
    #[inline(always)]
    pub fn cmp_le(self, rhs: Self) -> Self {
        self.mask_by(rhs, |a, b| a <= b)
    }

    /// Lane-wise `self > rhs`, as an all-ones / all-zeros bit mask.
    #[inline(always)]
    pub fn cmp_gt(self, rhs: Self) -> Self {
        self.mask_by(rhs, |a, b| a > b)
    }

    /// Lane-wise `self >= rhs`, as an all-ones / all-zeros bit mask.
    #[inline(always)]
    pub fn cmp_ge(self, rhs: Self) -> Self {
        self.mask_by(rhs, |a, b| a >= b)
    }

    #[inline(always)]
    fn mask_by(self, rhs: Self, f: impl Fn(f64, f64) -> bool) -> Self {
        let mut out = [0.0f64; 4];
        for (l, o) in out.iter_mut().enumerate() {
            *o = f64::from_bits(if f(self.0[l], rhs.0[l]) { MASK_TRUE } else { 0 });
        }
        f64x4(out)
    }

    /// Per-lane select: lanes where `self` (a mask) is all-ones take `t`,
    /// the rest take `f`.  Pure bit arithmetic, so it also works for
    /// blending masks themselves.
    #[inline(always)]
    pub fn blend(self, t: Self, f: Self) -> Self {
        let mut out = [0.0f64; 4];
        for (l, o) in out.iter_mut().enumerate() {
            let m = self.0[l].to_bits();
            *o = f64::from_bits((t.0[l].to_bits() & m) | (f.0[l].to_bits() & !m));
        }
        f64x4(out)
    }

    /// Packs the sign bit of each lane into bits 0..=3 (the `movmskpd`
    /// shape).  On a comparison mask this is the set of `true` lanes.
    #[inline(always)]
    pub fn move_mask(self) -> u32 {
        let mut m = 0u32;
        for l in 0..4 {
            m |= ((self.0[l].to_bits() >> 63) as u32) << l;
        }
        m
    }

    /// True if any lane of this mask is set.
    #[inline(always)]
    pub fn any(self) -> bool {
        self.move_mask() != 0
    }

    /// True if all four lanes of this mask are set.
    #[inline(always)]
    pub fn all(self) -> bool {
        self.move_mask() == 0b1111
    }

    /// Horizontal minimum, folded as `min(min(l0, l1), min(l2, l3))`;
    /// with `min`'s second-operand tie rule the highest-numbered lane's
    /// bit pattern survives equal values (unobservable when equal lanes
    /// are bitwise identical, which the kernels guarantee).
    #[inline(always)]
    pub fn reduce_min(self) -> f64 {
        let lo = if self.0[0] < self.0[1] { self.0[0] } else { self.0[1] };
        let hi = if self.0[2] < self.0[3] { self.0[2] } else { self.0[3] };
        if lo < hi {
            lo
        } else {
            hi
        }
    }

    /// Horizontal maximum, folded as `max(max(l0, l1), max(l2, l3))` with
    /// the `maxpd` shape (`a > b ? a : b` — second operand survives ties
    /// and NaN).  For NaN-free lanes, `v.reduce_max() <= x` is exactly
    /// "every lane `<= x`" — the branch-free way to run an all-lanes
    /// comparison, since a float fold lowers to `maxpd`/`maxsd` while a
    /// mask-and-`movmskpd` round trip does not autovectorize.
    #[inline(always)]
    pub fn reduce_max(self) -> f64 {
        let lo = if self.0[0] > self.0[1] { self.0[0] } else { self.0[1] };
        let hi = if self.0[2] > self.0[3] { self.0[2] } else { self.0[3] };
        if lo > hi {
            lo
        } else {
            hi
        }
    }
}

macro_rules! lane_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for f64x4 {
            type Output = f64x4;
            #[inline(always)]
            fn $method(self, rhs: f64x4) -> f64x4 {
                let mut out = [0.0f64; 4];
                for l in 0..4 {
                    out[l] = self.0[l] $op rhs.0[l];
                }
                f64x4(out)
            }
        }
    };
}

lane_op!(Add, add, +);
lane_op!(Sub, sub, -);
lane_op!(Mul, mul, *);
lane_op!(Div, div, /);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_arithmetic_is_plain_ieee() {
        let a = f64x4::new([1.0, 2.5, -3.0, 0.125]);
        let b = f64x4::new([4.0, 0.5, 2.0, 8.0]);
        assert_eq!((a + b).to_array(), [5.0, 3.0, -1.0, 8.125]);
        assert_eq!((a - b).to_array(), [-3.0, 2.0, -5.0, -7.875]);
        assert_eq!((a * b).to_array(), [4.0, 1.25, -6.0, 1.0]);
        assert_eq!((a / b).to_array(), [0.25, 5.0, -1.5, 0.015625]);
        // Lane arithmetic must match the scalar op bit-for-bit, including
        // cases where an FMA contraction would round differently.
        let x = 1.0 + f64::EPSILON;
        let v = f64x4::splat(x) * f64x4::splat(x) - f64x4::splat(1.0);
        assert_eq!(v.lane(0).to_bits(), (x * x - 1.0).to_bits());
    }

    #[test]
    fn min_keeps_second_operand_on_ties() {
        let a = f64x4::new([1.0, 2.0, -0.0, 5.0]);
        let b = f64x4::new([2.0, 1.0, 0.0, 5.0]);
        let m = a.min(b);
        assert_eq!(m.to_array(), [1.0, 1.0, 0.0, 5.0]);
        // `-0.0 < 0.0` is false, so the tie lane takes `b`'s +0.0 bits —
        // exactly what hardware `minpd` does.
        assert_eq!(m.lane(2).to_bits(), (0.0f64).to_bits());
        assert_eq!(a.min(a).to_array(), a.to_array());
    }

    #[test]
    fn comparisons_produce_full_masks() {
        let a = f64x4::new([1.0, 2.0, 3.0, 4.0]);
        let b = f64x4::splat(2.5);
        assert_eq!(a.cmp_lt(b).move_mask(), 0b0011);
        assert_eq!(a.cmp_gt(b).move_mask(), 0b1100);
        let c = f64x4::new([1.0, 2.5, 3.0, 2.5]);
        assert_eq!(c.cmp_le(b).move_mask(), 0b1011);
        assert_eq!(c.cmp_ge(b).move_mask(), 0b1110);
        assert!(a.cmp_lt(f64x4::splat(10.0)).all());
        assert!(!a.cmp_lt(f64x4::splat(2.0)).all());
        assert!(a.cmp_lt(f64x4::splat(2.0)).any());
        assert!(!a.cmp_lt(f64x4::splat(0.0)).any());
    }

    #[test]
    fn blend_selects_per_lane_bit_patterns() {
        let mask = f64x4::new([1.0, 2.0, 3.0, 4.0]).cmp_gt(f64x4::splat(2.5));
        let t = f64x4::splat(-0.0);
        let f = f64x4::splat(f64::INFINITY);
        let out = mask.blend(t, f);
        assert_eq!(out.lane(0), f64::INFINITY);
        assert_eq!(out.lane(1), f64::INFINITY);
        assert_eq!(out.lane(2).to_bits(), (-0.0f64).to_bits());
        assert_eq!(out.lane(3).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn reduce_min_tie_rule_is_pinned() {
        assert_eq!(f64x4::new([3.0, 1.0, 2.0, 1.5]).reduce_min(), 1.0);
        assert_eq!(f64x4::new([9.0, 9.0, 9.0, 9.0]).reduce_min(), 9.0);
        // All lanes compare equal: the second-operand tie rule means the
        // highest lane's bit pattern survives (+0.0 from lane 3 here).
        let v = f64x4::new([-0.0, 0.0, 0.0, 0.0]);
        assert_eq!(v.reduce_min().to_bits(), (0.0f64).to_bits());
        assert_eq!(f64x4::INFINITY.reduce_min(), f64::INFINITY);
    }

    #[test]
    fn reduce_max_is_the_all_lanes_comparison() {
        let v = f64x4::new([3.0, 1.0, 2.0, 1.5]);
        assert_eq!(v.reduce_max(), 3.0);
        // reduce_max <= x  ⟺  every lane <= x (NaN-free lanes).
        assert!(v.reduce_max() <= 3.0);
        assert!(v.reduce_max() > 2.9);
        // Same second-operand tie rule as reduce_min: lane 3's bits
        // survive all-equal lanes.
        let t = f64x4::new([0.0, 0.0, 0.0, -0.0]);
        assert_eq!(t.reduce_max().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn from_slice_reads_exactly_four() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(f64x4::from_slice(&xs).to_array(), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f64x4::from_slice(&xs[1..]).to_array(), [2.0, 3.0, 4.0, 5.0]);
    }
}
