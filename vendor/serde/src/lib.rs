//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize` / `Deserialize` on its model types so
//! they stay serialisation-ready, but never drives an actual serde data
//! format (snapshots go through `chain2l_exec::state::Snapshot` instead).
//! This stub therefore only has to provide the two traits and their derive
//! macros; the derives emit empty impls of these marker traits.

#![forbid(unsafe_code)]

/// A type that can be serialised.  Marker-only in this offline stand-in.
pub trait Serialize {}

/// A type that can be deserialised.  Marker-only in this offline stand-in.
pub trait Deserialize<'de>: Sized {}

/// A type that can be deserialised without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
