//! Offline stand-in for `rayon`.
//!
//! Implements the data-parallel subset the workspace uses —
//! `par_iter()` / `into_par_iter()` with `map`, `for_each` and ordered
//! `collect` — on top of `std::thread::scope`.  Scheduling is dynamic: every
//! worker steals the next unclaimed item index from a shared atomic cursor,
//! so long-running cells (the `O(n⁶)` DP at large `n`) do not serialise the
//! sweep behind a static partition.  Results are written back by item index,
//! which keeps `collect` order — and therefore all sweep output —
//! deterministic regardless of thread timing.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used by parallel iterators: the value of the
/// `RAYON_NUM_THREADS` environment variable when set and positive, otherwise
/// the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs the two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Maps `f` over `items` on a scoped worker pool, preserving input order.
///
/// Each worker claims item indices from a shared atomic cursor (dynamic
/// scheduling) and records `(index, result)` pairs; the pairs are reassembled
/// in index order at the end, so the output is independent of thread timing.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let cursor = &cursor;

    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("item slot poisoned")
                            .take()
                            .expect("item claimed twice");
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("rayon worker panicked")).collect()
    });

    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Parallel iterator traits and adapters.
pub mod iter {
    use super::parallel_map_vec;

    /// A parallel iterator: a finite sequence of `Send` items that can be
    /// mapped and collected on the worker pool with stable ordering.
    pub trait ParallelIterator: Sized + Send {
        /// The element type.
        type Item: Send;

        /// Materialises all items, running any pending stages in parallel.
        fn drive(self) -> Vec<Self::Item>;

        /// Maps each item through `f` in parallel.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Runs `f` on every item in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            let _ = self.map(f).drive();
        }

        /// Collects into any `FromIterator` container, in input order.
        fn collect<C>(self) -> C
        where
            C: FromIterator<Self::Item>,
        {
            self.drive().into_iter().collect()
        }

        /// Sums the items.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item>,
        {
            self.drive().into_iter().sum()
        }

        /// Number of items.
        fn count(self) -> usize {
            self.drive().len()
        }
    }

    /// Leaf iterator over an owned vector (no parallel stage pending).
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for IntoParIter<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.items
        }
    }

    /// A mapping stage; `drive` evaluates it on the worker pool.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, R, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        R: Send,
        F: Fn(B::Item) -> R + Sync + Send,
    {
        type Item = R;
        fn drive(self) -> Vec<R> {
            parallel_map_vec(self.base.drive(), self.f)
        }
    }

    /// Types convertible into an owning parallel iterator.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The concrete iterator.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = IntoParIter<T>;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
        type Item = T;
        type Iter = IntoParIter<T>;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self.into_iter().collect() }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = IntoParIter<usize>;
        fn into_par_iter(self) -> IntoParIter<usize> {
            IntoParIter { items: self.collect() }
        }
    }

    impl IntoParallelIterator for std::ops::RangeInclusive<usize> {
        type Item = usize;
        type Iter = IntoParIter<usize>;
        fn into_par_iter(self) -> IntoParIter<usize> {
            IntoParIter { items: self.collect() }
        }
    }

    /// `par_iter()` — borrowing parallel iteration.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed element type.
        type Item: Send + 'data;
        /// The concrete iterator.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Iterates over `&self` in parallel.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = IntoParIter<&'data T>;
        fn par_iter(&'data self) -> IntoParIter<&'data T> {
            IntoParIter { items: self.iter().collect() }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = IntoParIter<&'data T>;
        fn par_iter(&'data self) -> IntoParIter<&'data T> {
            IntoParIter { items: self.iter().collect() }
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_collect_matches_sequential_map() {
        let input: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * x).collect();
        let parallel: Vec<u64> = input.into_par_iter().map(|x| x * x).collect();
        assert_eq!(parallel, expected);
    }

    #[test]
    fn uneven_work_still_collects_in_order() {
        // Large early items force later items to finish first under dynamic
        // scheduling; order must still be preserved.
        let work: Vec<usize> = vec![200_000, 1, 1, 100_000, 1, 1, 50_000, 1];
        let out: Vec<usize> = work
            .clone()
            .into_par_iter()
            .map(|n| (0..n).fold(0usize, |a, b| a.wrapping_add(b)) % 7 + n)
            .collect();
        let expected: Vec<usize> = work
            .into_iter()
            .map(|n| (0..n).fold(0usize, |a, b| a.wrapping_add(b)) % 7 + n)
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_iter_borrows() {
        let input: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let lens: Vec<usize> = input.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 2);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn repeated_runs_are_identical() {
        let run = || -> Vec<f64> {
            (0usize..64).into_par_iter().map(|i| (i as f64).sqrt().sin()).collect()
        };
        assert_eq!(run(), run());
    }
}
