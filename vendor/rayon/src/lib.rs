//! Offline stand-in for `rayon`.
//!
//! Implements the data-parallel subset the workspace uses —
//! `par_iter()` / `into_par_iter()` with `map`, `for_each`, `reduce` and
//! ordered `collect`, slice chunking (`par_chunks` / `par_chunks_mut`),
//! a minimal [`ThreadPoolBuilder`] / [`ThreadPool::install`], plus [`join`]
//! and the [`scope`] / [`Scope::spawn`] task API — on top of
//! `std::thread::scope`.  Scheduling is dynamic: every
//! worker steals the next unclaimed item index from a shared atomic cursor,
//! so long-running cells (the `O(n⁶)` DP at large `n`) do not serialise the
//! sweep behind a static partition.  Results are written back by item index,
//! which keeps `collect` order — and therefore all sweep output —
//! deterministic regardless of thread timing.  `reduce` folds the
//! materialised items left-to-right, so it is deterministic even for
//! non-associative operators (stricter than real rayon, never weaker).

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`]
    /// (0 = no override).
    static POOL_NUM_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Number of worker threads used by parallel iterators: an installed
/// [`ThreadPool`] override first, then the `RAYON_NUM_THREADS` environment
/// variable when set and positive, otherwise the machine's available
/// parallelism.
pub fn current_num_threads() -> usize {
    let installed = POOL_NUM_THREADS.with(|n| n.get());
    if installed > 0 {
        return installed;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Error returned by [`ThreadPoolBuilder::build`] (the stub cannot actually
/// fail; the type exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Minimal stand-in for `rayon::ThreadPoolBuilder`: carries a worker count
/// into [`ThreadPool::install`] scopes.
#[derive(Debug, Default, Clone)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (`0` = the global default).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.  Never fails in the stub; the `Result` mirrors the
    /// real API so call sites port unchanged.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// Minimal stand-in for `rayon::ThreadPool`.
///
/// The stub spawns scoped workers per parallel call instead of keeping
/// long-lived threads, so a pool is just a worker-count override that
/// [`ThreadPool::install`] applies to every parallel call made from inside
/// `op` on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count installed.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let previous = POOL_NUM_THREADS.with(|n| n.replace(self.num_threads));
        // Restore on unwind too, so a panicking op does not leak the override.
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_NUM_THREADS.with(|n| n.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }

    /// The worker count this pool installs (`0` = the global default).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// Runs the two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

thread_local! {
    /// True on pool worker threads.  Nested parallel calls run sequentially
    /// on the worker instead of spawning another full set of threads: real
    /// rayon schedules nested work on the *same* pool, whereas a fresh pool
    /// per nested call would oversubscribe a T-core machine with ~T² CPU-bound
    /// threads (e.g. a parallel sweep grid whose cells each run a `d1`-sharded
    /// DP).
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Maps `f` over `items` on a scoped worker pool, preserving input order.
///
/// Each worker claims item indices from a shared atomic cursor (dynamic
/// scheduling) and records `(index, result)` pairs; the pairs are reassembled
/// in index order at the end, so the output is independent of thread timing.
/// Calls made from inside a worker run sequentially (see [`IN_POOL_WORKER`]);
/// results are unaffected because ordering is index-based either way.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let nested = IN_POOL_WORKER.with(|w| w.get());
    let threads = if nested { 1 } else { current_num_threads().min(n) };
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let cursor = &cursor;

    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    IN_POOL_WORKER.with(|w| w.set(true));
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("item slot poisoned")
                            .take()
                            .expect("item claimed twice");
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("rayon worker panicked")).collect()
    });

    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A task spawned into a [`Scope`], boxed so nested spawns can be queued.
type ScopeJob<'env> = Box<dyn FnOnce(&Scope<'env>) + Send + 'env>;

/// A spawn target for structured, scoped task parallelism (the subset of
/// `rayon::Scope` the workspace uses: [`Scope::spawn`]).
///
/// Jobs spawned while the `scope` closure runs (or from inside other jobs —
/// nesting is supported) are queued and executed on the worker pool before
/// [`scope`] returns.
pub struct Scope<'env> {
    queue: Mutex<Vec<ScopeJob<'env>>>,
}

impl<'env> Scope<'env> {
    /// Queues `body` for execution on the pool before the scope ends.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        self.queue.lock().expect("scope queue poisoned").push(Box::new(body));
    }
}

/// Creates a scope: every task spawned into it completes before `scope`
/// returns, so tasks may borrow non-`'static` data from the caller.
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'env>) -> R,
{
    let s = Scope { queue: Mutex::new(Vec::new()) };
    let result = op(&s);
    // Drain in rounds: jobs executed in one round may spawn more jobs.
    loop {
        let jobs = std::mem::take(&mut *s.queue.lock().expect("scope queue poisoned"));
        if jobs.is_empty() {
            break;
        }
        let sref = &s;
        let _: Vec<()> = parallel_map_vec(jobs, move |job| job(sref));
    }
    result
}

/// Parallel iterator traits and adapters.
pub mod iter {
    use super::parallel_map_vec;

    /// A parallel iterator: a finite sequence of `Send` items that can be
    /// mapped and collected on the worker pool with stable ordering.
    pub trait ParallelIterator: Sized + Send {
        /// The element type.
        type Item: Send;

        /// Materialises all items, running any pending stages in parallel.
        fn drive(self) -> Vec<Self::Item>;

        /// Maps each item through `f` in parallel.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Runs `f` on every item in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            let _ = self.map(f).drive();
        }

        /// Collects into any `FromIterator` container, in input order.
        fn collect<C>(self) -> C
        where
            C: FromIterator<Self::Item>,
        {
            self.drive().into_iter().collect()
        }

        /// Reduces the items to a single value, starting from `identity()`.
        ///
        /// The stub evaluates pending stages in parallel, then folds the
        /// materialised items **left-to-right**, so the result is
        /// deterministic even for non-associative operators (real rayon
        /// requires `op` to be associative and `identity` neutral; code
        /// written against that contract behaves identically here).
        fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
        where
            ID: Fn() -> Self::Item + Sync + Send,
            OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
        {
            self.drive().into_iter().fold(identity(), op)
        }

        /// Sums the items.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item>,
        {
            self.drive().into_iter().sum()
        }

        /// Number of items.
        fn count(self) -> usize {
            self.drive().len()
        }
    }

    /// Leaf iterator over an owned vector (no parallel stage pending).
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for IntoParIter<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.items
        }
    }

    /// A mapping stage; `drive` evaluates it on the worker pool.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, R, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        R: Send,
        F: Fn(B::Item) -> R + Sync + Send,
    {
        type Item = R;
        fn drive(self) -> Vec<R> {
            parallel_map_vec(self.base.drive(), self.f)
        }
    }

    /// Types convertible into an owning parallel iterator.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The concrete iterator.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = IntoParIter<T>;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
        type Item = T;
        type Iter = IntoParIter<T>;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self.into_iter().collect() }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = IntoParIter<usize>;
        fn into_par_iter(self) -> IntoParIter<usize> {
            IntoParIter { items: self.collect() }
        }
    }

    impl IntoParallelIterator for std::ops::RangeInclusive<usize> {
        type Item = usize;
        type Iter = IntoParIter<usize>;
        fn into_par_iter(self) -> IntoParIter<usize> {
            IntoParIter { items: self.collect() }
        }
    }

    /// `par_chunks()` — borrowed, non-overlapping sub-slices of at most
    /// `chunk_size` items, iterated in parallel with stable ordering.
    pub trait ParallelSlice<T: Sync> {
        /// Splits the slice into chunks of at most `chunk_size` items.
        ///
        /// # Panics
        /// Panics if `chunk_size` is zero (matching real rayon).
        fn par_chunks(&self, chunk_size: usize) -> IntoParIter<&[T]>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> IntoParIter<&[T]> {
            assert!(chunk_size > 0, "chunk_size must be positive");
            IntoParIter { items: self.chunks(chunk_size).collect() }
        }
    }

    /// `par_chunks_mut()` — mutable, non-overlapping sub-slices of at most
    /// `chunk_size` items, iterated in parallel with stable ordering.
    ///
    /// This is the row-batching primitive of the incremental DP kernels: one
    /// pool task extends a whole batch of small disk-segment slices instead
    /// of paying per-slice scheduling overhead.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits the slice into mutable chunks of at most `chunk_size` items.
        ///
        /// # Panics
        /// Panics if `chunk_size` is zero (matching real rayon).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> IntoParIter<&mut [T]>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> IntoParIter<&mut [T]> {
            assert!(chunk_size > 0, "chunk_size must be positive");
            IntoParIter { items: self.chunks_mut(chunk_size).collect() }
        }
    }

    /// `par_iter()` — borrowing parallel iteration.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed element type.
        type Item: Send + 'data;
        /// The concrete iterator.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Iterates over `&self` in parallel.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = IntoParIter<&'data T>;
        fn par_iter(&'data self) -> IntoParIter<&'data T> {
            IntoParIter { items: self.iter().collect() }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = IntoParIter<&'data T>;
        fn par_iter(&'data self) -> IntoParIter<&'data T> {
            IntoParIter { items: self.iter().collect() }
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Slice-parallelism traits, re-exported under the real crate's module path.
pub mod slice {
    pub use crate::iter::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_collect_matches_sequential_map() {
        let input: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * x).collect();
        let parallel: Vec<u64> = input.into_par_iter().map(|x| x * x).collect();
        assert_eq!(parallel, expected);
    }

    #[test]
    fn uneven_work_still_collects_in_order() {
        // Large early items force later items to finish first under dynamic
        // scheduling; order must still be preserved.
        let work: Vec<usize> = vec![200_000, 1, 1, 100_000, 1, 1, 50_000, 1];
        let out: Vec<usize> = work
            .clone()
            .into_par_iter()
            .map(|n| (0..n).fold(0usize, |a, b| a.wrapping_add(b)) % 7 + n)
            .collect();
        let expected: Vec<usize> = work
            .into_iter()
            .map(|n| (0..n).fold(0usize, |a, b| a.wrapping_add(b)) % 7 + n)
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_iter_borrows() {
        let input: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let lens: Vec<usize> = input.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 2);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn reduce_folds_in_input_order() {
        let total: u64 =
            (1u64..=100).collect::<Vec<_>>().into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
        // Left fold: deterministic even for a non-associative operator.
        let diff: i64 = vec![100i64, 30, 20].into_par_iter().reduce(|| 0, |a, b| a - b);
        assert_eq!(diff, 0 - 100 - 30 - 20);
    }

    #[test]
    fn scope_runs_spawned_and_nested_jobs_before_returning() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let result = super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|inner| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    // Nested spawn from inside a running job.
                    inner.spawn(|_| {
                        counter.fetch_add(10, Ordering::Relaxed);
                    });
                });
            }
            "done"
        });
        assert_eq!(result, "done");
        assert_eq!(counter.load(Ordering::Relaxed), 8 + 80);
    }

    #[test]
    fn scope_tasks_may_borrow_local_data() {
        let inputs: Vec<u64> = (0..32).collect();
        let mut outputs: Vec<Option<u64>> = vec![None; inputs.len()];
        super::scope(|s| {
            for (slot, &x) in outputs.iter_mut().zip(&inputs) {
                s.spawn(move |_| *slot = Some(x * x));
            }
        });
        for (i, o) in outputs.iter().enumerate() {
            assert_eq!(*o, Some((i as u64) * (i as u64)));
        }
    }

    #[test]
    fn nested_parallelism_stays_on_the_worker_thread() {
        // A nested parallel call from inside a pool worker must not spawn a
        // second set of threads (T² oversubscription); it runs sequentially
        // on the worker, with identical results.
        let nested_ids: Vec<Vec<std::thread::ThreadId>> = (0..4usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|_| {
                (0..8usize)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .map(|_| std::thread::current().id())
                    .collect::<Vec<_>>()
            })
            .collect();
        for ids in &nested_ids {
            assert!(ids.iter().all(|&id| id == ids[0]), "nested call left its worker");
        }
        // Values computed through a nested stage are still correct and ordered.
        let values: Vec<Vec<usize>> = vec![3usize, 5]
            .into_par_iter()
            .map(|k| (0..k).collect::<Vec<_>>().into_par_iter().map(|x| x * 2).collect())
            .collect();
        assert_eq!(values, vec![vec![0, 2, 4], vec![0, 2, 4, 6, 8]]);
    }

    #[test]
    fn repeated_runs_are_identical() {
        let run = || -> Vec<f64> {
            (0usize..64).into_par_iter().map(|i| (i as f64).sqrt().sin()).collect()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn par_chunks_covers_the_slice_in_order() {
        let data: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = data.par_chunks(10).map(|c| c.iter().sum::<u32>()).collect();
        let expected: Vec<u32> = data.chunks(10).map(|c| c.iter().sum::<u32>()).collect();
        assert_eq!(sums, expected);
        assert_eq!(sums.len(), 11, "last partial chunk included");
    }

    #[test]
    fn par_chunks_mut_mutates_every_element_exactly_once() {
        let mut data: Vec<u64> = vec![1; 77];
        data.par_chunks_mut(8).for_each(|chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 2));
    }

    #[test]
    #[should_panic]
    fn par_chunks_rejects_zero_chunk_size() {
        let data = [1, 2, 3];
        let _ = data.par_chunks(0);
    }

    #[test]
    fn thread_pool_installs_a_worker_count_override() {
        // No env-var mutation here: setenv/getenv race against the other
        // tests' worker threads reading RAYON_NUM_THREADS concurrently.
        let default_threads = super::current_num_threads();
        let override_threads = default_threads + 7;
        let pool = super::ThreadPoolBuilder::new().num_threads(override_threads).build().unwrap();
        assert_eq!(pool.current_num_threads(), override_threads);
        let (inside, outside_after) = {
            let inside = pool.install(super::current_num_threads);
            (inside, super::current_num_threads())
        };
        assert_eq!(inside, override_threads);
        // The override does not leak out of the install scope.
        assert_eq!(outside_after, default_threads);
        // Nested installs restore the outer override on exit.
        let outer = super::ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let inner = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (inner_seen, outer_seen) = outer.install(|| {
            let inner_seen = inner.install(super::current_num_threads);
            (inner_seen, super::current_num_threads())
        });
        assert_eq!((inner_seen, outer_seen), (2, 5));
        // Zero means "default": install changes nothing observable.
        let default_pool = super::ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(default_pool.install(super::current_num_threads), super::current_num_threads());
    }

    #[test]
    fn thread_pool_results_match_sequential_map() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool
            .install(|| (0usize..100).collect::<Vec<_>>().into_par_iter().map(|x| x * 3).collect());
        let expected: Vec<usize> = (0..100).map(|x| x * 3).collect();
        assert_eq!(out, expected);
    }
}
