//! Offline stand-in for the readiness-polling core of `mio`.
//!
//! Implements the subset the workspace's event loops use — [`Poll`],
//! [`Events`], [`Token`] and [`Interest`] — on top of the `poll(2)` system
//! call, driving plain `std::net` sockets switched to non-blocking mode
//! (anything `AsRawFd`).  Differences from real `mio`, chosen to keep the
//! stub small and dependency-free:
//!
//! * registration methods live directly on [`Poll`] (no separate
//!   `Registry`), and sources are taken by shared reference — the stub only
//!   reads the raw fd, it never takes ownership of the socket;
//! * readiness is **level-triggered**: an event keeps firing while the
//!   condition holds, so callers toggle [`Interest`] with
//!   [`Poll::reregister`] instead of relying on edge semantics (the same
//!   discipline real `mio` recommends for writable interest);
//! * there are no wrapper net types and no `Waker` — callers register the
//!   readable end of a `UnixStream::pair` when a cross-thread wakeup is
//!   needed.
//!
//! The one `unsafe` block in the workspace lives here: the FFI declaration
//! and invocation of `poll(2)`.  It is sound because the `pollfd` array is
//! exclusively owned for the duration of the call and `nfds` never exceeds
//! its length.  Everything above this crate stays `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Caller-chosen identifier echoed in every [`Event`] for the registered
/// source that became ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness conditions a registration asks to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the source has bytes to read (or reached EOF / was reset —
    /// closure is always reported, like `POLLHUP`).
    pub const READABLE: Interest = Interest(0b01);
    /// Wake when the source can accept more bytes without blocking.
    pub const WRITABLE: Interest = Interest(0b10);
    /// Wake only for errors and peer closure (`POLLERR` / `POLLHUP` are
    /// always reported by `poll(2)`).  A stub extension real `mio` lacks:
    /// level-triggered loops park backpressured connections here so a full
    /// inflight window does not spin on permanently-ready sockets.
    pub const NONE: Interest = Interest(0);

    /// Combines two interests (`READABLE.add(WRITABLE)` waits for either).
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether this interest includes readability.
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Whether this interest includes writability.
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness notification returned by [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
    closed: bool,
}

impl Event {
    /// The token the ready source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// The source has bytes to read, or read-closure to observe.
    pub fn is_readable(&self) -> bool {
        self.readable || self.closed || self.error
    }

    /// The source can accept bytes without blocking.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// The source is in an error state (`POLLERR` / `POLLNVAL`); a
    /// subsequent read or write reports the concrete `io::Error`.
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// The peer closed the connection (`POLLHUP`).
    pub fn is_read_closed(&self) -> bool {
        self.closed
    }
}

/// Buffer of [`Event`]s filled by [`Poll::poll`], reused across calls.
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty event buffer (`capacity` is advisory; the stub returns every
    /// ready source regardless).
    pub fn with_capacity(capacity: usize) -> Events {
        Events { inner: Vec::with_capacity(capacity) }
    }

    /// Iterates over the events of the last [`Poll::poll`] call.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Whether the last poll returned no events (i.e. it timed out).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// `struct pollfd` from `<poll.h>` (identical layout on every Linux ABI the
/// workspace targets).
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: std::os::raw::c_int) -> i32;
}

/// The readiness selector: a registry of `(fd, token, interest)` plus
/// [`Poll::poll`], which blocks until at least one registered source is
/// ready or the timeout elapses.
#[derive(Debug, Default)]
pub struct Poll {
    registry: Vec<(RawFd, Token, Interest)>,
}

impl Poll {
    /// A selector with an empty registry.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll::default())
    }

    /// Registers `source` under `token`.  The source must already be in
    /// non-blocking mode; registering an fd twice is an error
    /// (use [`Poll::reregister`]).
    pub fn register(
        &mut self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        if self.registry.iter().any(|(f, _, _)| *f == fd) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        self.registry.push((fd, token, interest));
        Ok(())
    }

    /// Updates the token and interest of an already-registered source.
    pub fn reregister(
        &mut self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        for entry in &mut self.registry {
            if entry.0 == fd {
                entry.1 = token;
                entry.2 = interest;
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
    }

    /// Removes a source from the registry (a no-op if it was never
    /// registered, matching how event loops tear down half-closed sockets).
    pub fn deregister(&mut self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        self.registry.retain(|(f, _, _)| *f != fd);
        Ok(())
    }

    /// Blocks until a registered source is ready or `timeout` elapses
    /// (`None` waits indefinitely), then fills `events` with every ready
    /// source.  `EINTR` is retried transparently.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        let mut fds: Vec<PollFd> = self
            .registry
            .iter()
            .map(|(fd, _, interest)| PollFd {
                fd: *fd,
                events: if interest.is_readable() { POLLIN } else { 0 }
                    | if interest.is_writable() { POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        loop {
            // SAFETY: `fds` is exclusively borrowed for the duration of the
            // call and `nfds` equals its length, so the kernel writes only
            // inside the allocation.
            let rc =
                unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, timeout_ms) };
            if rc >= 0 {
                break;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
        for (pollfd, (_, token, _)) in fds.iter().zip(&self.registry) {
            let r = pollfd.revents;
            if r == 0 {
                continue;
            }
            events.inner.push(Event {
                token: *token,
                readable: r & POLLIN != 0,
                writable: r & POLLOUT != 0,
                error: r & (POLLERR | POLLNVAL) != 0,
                closed: r & POLLHUP != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn interest_combines_and_queries() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }

    #[test]
    fn readiness_fires_for_accept_read_and_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        poll.register(&listener, Token(0), Interest::READABLE).unwrap();

        // No client yet: the poll times out with no events.
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        // A connecting client makes the listener readable.
        let mut client = TcpStream::connect(addr).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(0) && e.is_readable()));
        let (mut accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();

        // A fresh socket is writable; after the peer sends, it is readable.
        poll.register(&accepted, Token(1), Interest::READABLE | Interest::WRITABLE).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(1) && e.is_writable()));
        client.write_all(b"ping\n").unwrap();
        client.flush().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(1) && e.is_readable()));
        let mut buf = [0u8; 16];
        assert_eq!(accepted.read(&mut buf).unwrap(), 5);

        // Peer closure is reported as readable (EOF) on the next poll.
        drop(client);
        poll.reregister(&accepted, Token(1), Interest::READABLE).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(1) && e.is_readable()));
        assert_eq!(accepted.read(&mut buf).unwrap(), 0, "EOF after peer close");
        poll.deregister(&accepted).unwrap();
    }

    #[test]
    fn double_registration_is_rejected_and_deregister_is_idempotent() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut poll = Poll::new().unwrap();
        poll.register(&listener, Token(0), Interest::READABLE).unwrap();
        assert!(poll.register(&listener, Token(1), Interest::READABLE).is_err());
        poll.deregister(&listener).unwrap();
        poll.deregister(&listener).unwrap();
        assert!(poll.reregister(&listener, Token(0), Interest::READABLE).is_err());
    }
}
