//! Offline stand-in for `rand` 0.8.
//!
//! Provides the subset the workspace uses: `rngs::StdRng` seeded with
//! `SeedableRng::seed_from_u64`, and `Rng::gen::<f64>()` /
//! `Rng::gen::<u64>()` / `gen_bool` / `gen_range`.  The generator is
//! xoshiro256++ with SplitMix64 seed expansion — adjacent seeds (the
//! workspace derives per-worker streams as `seed + worker`) yield
//! decorrelated streams.

#![forbid(unsafe_code)]

/// Low-level entropy source: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values samplable from the "standard" distribution of their type
/// (`[0, 1)` for floats, uniform over the full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // wrapping: `end - start + 1` overflows for the full-width range,
                // where span == 0 signals "use all 64 bits".
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from its type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and stream derivation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator with the given state.
    pub fn new(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[0].wrapping_add(self.s[3]).rotate_left(23));
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn gen_f64_is_in_unit_interval_and_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.gen();
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
