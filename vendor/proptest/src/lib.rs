//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(...)]` header), `prop_assert*`
//! / `prop_assume!`, `prop_oneof!`, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`Just`](strategy::Just) and
//! [`collection::vec`].
//!
//! Differences from the real crate: cases are drawn from a deterministic
//! per-test RNG (seeded from the test function's name), there is no
//! shrinking, and failed assertions panic immediately with the offending
//! values in the message.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; rejections (`prop_assume!`) simply
        /// skip the case.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256, max_shrink_iters: 0, max_global_rejects: 1024 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }

    /// Deterministic RNG driving strategy sampling (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test name), so
        /// every test sees its own reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: hash }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi]`.
        pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            // wrapping: span == 0 signals the full 64-bit range.
            let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
            if span == 0 {
                return self.next_u64() as usize;
            }
            lo + (self.next_u64() % span) as usize
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.sample(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` adapter.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, O, F> Strategy for Map<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// The `prop_flat_map` adapter.
    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, S2, F> Strategy for FlatMap<B, F>
    where
        B: Strategy,
        S2: Strategy,
        F: Fn(B::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; at least one option is required.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_inclusive(0, self.options.len() - 1);
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = self.start as u64;
                    let hi = self.end as u64 - 1;
                    (lo + rng.next_u64() % (hi - lo + 1)) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    // wrapping: span == 0 signals the full 64-bit range.
                    let span = hi.wrapping_sub(lo).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size interval for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_inclusive(self.size.min, self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _ in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics with the values on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn mapped_values_are_even(x in small_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_sizes_respect_bounds(v in crate::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn oneof_and_flat_map_and_assume(
            choice in prop_oneof![Just(1u64), Just(2u64), 10u64..20],
            v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..5, n)),
        ) {
            prop_assume!(choice != 2);
            prop_assert!(choice == 1 || (10..20).contains(&choice));
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("name");
        let mut b = crate::test_runner::TestRng::deterministic("name");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
