//! Offline stand-in for `serde_derive`.
//!
//! Emits empty impls of the marker traits in the sibling `serde` stub.  The
//! tiny hand-rolled parser extracts the type name (and rejects generic types,
//! which the workspace does not derive serde traits on).

#![forbid(unsafe_code)]

use proc_macro::{TokenStream, TokenTree};

/// Finds the identifier following the `struct` / `enum` / `union` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut tokens = input.clone().into_iter();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if matches!(
                            tokens.next(),
                            Some(TokenTree::Punct(p)) if p.as_char() == '<'
                        ) {
                            panic!(
                                "the offline serde_derive stub does not support \
                                 generic types (deriving on `{name}`)"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("expected a type name after `{word}`, found {other:?}"),
                }
            }
        }
    }
    panic!("serde_derive stub: no struct/enum found in derive input");
}

/// Derives an empty `impl serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}").parse().expect("valid impl block")
}

/// Derives an empty `impl serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
