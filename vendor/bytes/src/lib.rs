//! Offline stand-in for `bytes` 1.x.
//!
//! [`Bytes`] is a cheaply cloneable, immutable byte buffer (`Arc<[u8]>`
//! backed), [`BytesMut`] an owned growable buffer that freezes into
//! [`Bytes`], and [`BufMut`] the little-endian putter trait used by the
//! `chain2l-exec` snapshot codecs.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: Arc::from(data) }
    }

    /// Wraps a static byte slice (copied here; the real crate borrows it).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a copy of the sub-range as a new buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self::copy_from_slice(&self.data[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data: Arc::from(data) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl From<BytesMut> for Bytes {
    fn from(buf: BytesMut) -> Self {
        buf.freeze()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian append operations on byte buffers.
pub trait BufMut {
    /// Appends a raw byte slice.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` in little-endian IEEE-754 order.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cheap_clone() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(0xdead_beef);
        buf.put_f64_le(1.5);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 16);
        let copy = frozen.clone();
        assert_eq!(copy, frozen);
        assert_eq!(&frozen[..8], 0xdead_beefu64.to_le_bytes());
    }

    #[test]
    fn conversions() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b, vec![1u8, 2, 3]);
        assert_eq!(b.slice(1..3), Bytes::from(vec![2u8, 3]));
        assert_eq!(Bytes::from_static(b"xyz").to_vec(), b"xyz");
    }
}
