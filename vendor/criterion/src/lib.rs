//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`black_box`], [`BenchmarkId`] and
//! the `criterion_group!` / `criterion_main!` macros — with simple wall-clock
//! timing and plain-text reporting instead of statistics and plots.  Under
//! `cargo test` (`--test` harness mode) each benchmark runs a single
//! iteration as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measures one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `body`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `body` on inputs produced by `setup` (setup excluded).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut body: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(body(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint accepted by [`Bencher::iter_batched`] (ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // When the bench binary is run by `cargo test` it receives `--test`;
        // run each body once so the suite stays fast.
        let smoke_test = std::env::args().any(|a| a == "--test");
        Self { sample_size: 10, smoke_test }
    }
}

impl Criterion {
    /// Sets the default number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: u64) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.effective_iters(), f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), iters: self.effective_iters(), _parent: self }
    }

    fn effective_iters(&self) -> u64 {
        if self.smoke_test {
            1
        } else {
            self.sample_size
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Accepted for compatibility; the stub ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.iters, |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, iters: u64, mut f: F) {
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter =
        if bencher.iters > 0 { bencher.elapsed / bencher.iters as u32 } else { Duration::ZERO };
    println!("bench {id:60} {:>12.3?}/iter ({} iters)", per_iter, bencher.iters);
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_group_run() {
        let mut c = Criterion { sample_size: 2, smoke_test: false };
        let mut calls = 0u32;
        c.bench_function("unit", |b| b.iter(|| calls += 1));
        assert!(calls >= 2);
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}
